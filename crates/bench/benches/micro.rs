//! Criterion micro-benchmarks of the hot paths.
//!
//! The paper claims SDS is *lightweight*: "we use lightweight PCM tools
//! and low-complexity statistical methods". These benchmarks quantify
//! that on this implementation: a per-tick SDS update is a handful of
//! arithmetic operations, the DFT-ACF recomputation is `O(N log N)` on a
//! ~2-period window, and the KS test — the baseline's per-round cost —
//! is `O(n log n)` in the window size. Simulator throughput (cache access
//! and full server ticks) is measured too, since every experiment's wall
//! time is dominated by it.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use memdos_core::config::{SdsBParams, SdsPParams};
use memdos_core::sdsb::SdsB;
use memdos_core::sdsp::SdsP;
use memdos_sim::cache::{CacheGeometry, Llc};
use memdos_sim::pcm::Stat;
use memdos_sim::server::{Server, ServerConfig};
use memdos_stats::acf::acf_direct;
use memdos_stats::fft::fft_real;
use memdos_stats::ks::ks_two_sample;
use memdos_stats::period::detect_period;
use memdos_workloads::catalog::Application;

fn bench_sdsb_update(c: &mut Criterion) {
    c.bench_function("sdsb_on_sample", |b| {
        let mut det =
            SdsB::new(SdsBParams::default(), Stat::AccessNum, 1000.0, 50.0).expect("valid");
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(det.on_sample(1000.0 + (x % 13) as f64))
        });
    });
}

fn bench_sdsp_recompute(c: &mut Criterion) {
    c.bench_function("sdsp_full_window_cycle", |b| {
        // Feeding ΔW_P·ΔW raw samples triggers exactly one DFT-ACF
        // recomputation once the window is warm.
        let params = SdsPParams::default();
        let mut det = SdsP::new(params, Stat::AccessNum, 17.0).expect("valid");
        // Warm up the W_P window.
        for i in 0..60_000u64 {
            let phase = (i / 425) % 2;
            det.on_sample(if phase == 0 { 1000.0 } else { 300.0 });
        }
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..params.step_ma * params.step {
                i += 1;
                let phase = (i / 425) % 2;
                black_box(det.on_sample(if phase == 0 { 1000.0 } else { 300.0 }));
            }
        });
    });
}

fn bench_ks_test(c: &mut Criterion) {
    c.bench_function("ks_two_sample_100", |b| {
        let x: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| ((i * 53) % 97) as f64).collect();
        b.iter(|| black_box(ks_two_sample(&x, &y).expect("valid")));
    });
}

fn bench_fft(c: &mut Criterion) {
    c.bench_function("fft_real_1024", |b| {
        let signal: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.37).sin()).collect();
        b.iter(|| black_box(fft_real(&signal, 1024).expect("valid")));
    });
}

fn bench_dft_acf(c: &mut Criterion) {
    c.bench_function("dft_acf_detect_34", |b| {
        // A W_P = 2p window at the FaceNet scale (p ≈ 17).
        let signal: Vec<f64> = (0..34)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 17.0).sin())
            .collect();
        b.iter(|| black_box(detect_period(&signal).expect("valid")));
    });
    c.bench_function("acf_direct_200x50", |b| {
        let signal: Vec<f64> = (0..200).map(|i| ((i * 29) % 31) as f64).collect();
        b.iter(|| black_box(acf_direct(&signal, 50).expect("valid")));
    });
}

fn bench_cache_access(c: &mut Criterion) {
    c.bench_function("llc_access_hit", |b| {
        let mut llc = Llc::new(CacheGeometry::default());
        let d = llc.register_domain();
        for line in 0..1000u64 {
            llc.access(d, line);
        }
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 1) % 1000;
            black_box(llc.access(d, line))
        });
    });
}

fn bench_server_tick(c: &mut Criterion) {
    c.bench_function("server_tick_9vms", |b| {
        b.iter_batched(
            || {
                let mut server = Server::new(ServerConfig::default());
                let llc = server.config().geometry.lines() as u64;
                server.add_vm("victim", Application::KMeans.build(llc));
                for i in 0..7u64 {
                    server.add_vm(
                        format!("util-{i}"),
                        Box::new(memdos_workloads::apps::utility::program(i)),
                    );
                }
                server.run_collect(5); // warm the cache
                server
            },
            |mut server| black_box(server.tick()),
            BatchSize::PerIteration,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sdsb_update, bench_sdsp_recompute, bench_ks_test,
              bench_fft, bench_dft_acf, bench_cache_access, bench_server_tick
}
criterion_main!(benches);
