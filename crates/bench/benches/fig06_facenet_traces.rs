//! Figure 6 — deep learning applications under both memory-DoS attacks (§3.3).
//!
//! Regenerates the paper's Figure 6 panels: 60 s of benign execution
//! followed by 60 s under the bus-locking attack (AccessNum panel) or the
//! LLC-cleansing attack (MissNum panel), rendered as per-second
//! sparklines with the Observation 1/2 summary for every application.

use memdos_bench::figures::figure;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig06_facenet_traces");
    figure(
        "Figure 6 — deep learning applications",
        &[Application::FaceNet,],
        0x6F16,
    );
}
