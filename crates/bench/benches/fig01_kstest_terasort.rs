//! Figure 1 — "KStest results of TeraSort – no attack launched".
//!
//! Runs the KStest baseline on an attack-free TeraSort VM and prints the
//! 0/1 outcome of every KS round, grouped by `L_R` interval, exactly like
//! the four plots of Fig. 1 (value 1 = "the two sets of samples have
//! distinct probability distributions"). The paper's findings:
//!
//! * individual intervals contain ≥ 4 consecutive 1s even though no
//!   attack is running, and
//! * "more than 60 % of [the L_R intervals] indicate that there is an
//!   attack".

use memdos_core::config::KsTestParams;
use memdos_metrics::experiment::kstest_benign_run;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig01_kstest_terasort");
    let params = KsTestParams::default();
    // 20 L_R intervals of 30 s each, as in §3.2 ("twenty L_R intervals").
    let intervals = if std::env::var("MEMDOS_SCALE").as_deref() == Ok("quick") || std::env::var("MEMDOS_SCALE").is_err() {
        10u64
    } else {
        20u64
    };
    let ticks = intervals * params.l_r_ticks;
    let (rounds, fp) = kstest_benign_run(Application::TeraSort, ticks, params, 0xF1601);

    println!("KS round outcomes per L_R interval (1 = distributions differ):");
    let mut alarmed_intervals = 0u64;
    for interval in 0..intervals {
        let lo = interval * params.l_r_ticks;
        let hi = lo + params.l_r_ticks;
        let outcomes: Vec<&'static str> = rounds
            .iter()
            .filter(|r| (lo..hi).contains(&r.tick))
            .map(|r| if r.rejected { "1" } else { "0" })
            .collect();
        // An interval "indicates an attack" when it contains 4
        // consecutive rejections.
        let mut streak = 0;
        let mut alarmed = false;
        for r in rounds.iter().filter(|r| (lo..hi).contains(&r.tick)) {
            streak = if r.rejected { streak + 1 } else { 0 };
            if streak >= params.consecutive {
                alarmed = true;
            }
        }
        if alarmed {
            alarmed_intervals += 1;
        }
        println!(
            "  interval {interval:>2}: {} {}",
            outcomes.join(" "),
            if alarmed { "-> ATTACK DECLARED (false positive)" } else { "" }
        );
    }
    let declared = alarmed_intervals as f64 / intervals as f64;
    println!(
        "\nKStest declares an attack in {alarmed_intervals}/{intervals} intervals \
         ({:.0} %); paper: >60 %  (detector-level alarm-state FP fraction: {:.0} %)",
        declared * 100.0,
        fp * 100.0
    );
    memdos_bench::shape(
        "Fig. 1 TeraSort KStest false positives",
        declared > 0.6,
        format!("{:.0}% of attack-free L_R intervals declare an attack", declared * 100.0),
    );
}
