//! Figure 9 — recall of SDS, SDS/B, SDS/P and KStest under both attacks,
//! for every application.
//!
//! Paper expectations: "the median recalls of both SDS and KStest are
//! 100 %, regardless of the applications or the types of attacks"; SDS/B
//! and SDS/P alone also reach 100 % recall on the periodic applications.

use memdos_attacks::AttackKind;
use memdos_metrics::experiment::Scheme;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig09_recall");
    let stages = memdos_bench::scale();
    let cells = memdos_bench::accuracy_sweep(
        &Application::ALL,
        &AttackKind::ALL,
        stages,
        memdos_bench::runs(),
    );
    let table = memdos_bench::metric_table(
        "Figure 9: recall (median [p10, p90])",
        &cells,
        |c| c.recall(),
        2,
    );
    println!("{table}");

    for scheme in [Scheme::Sds, Scheme::KsTest] {
        let median = memdos_bench::median_where(
            &cells,
            |c| c.scheme == scheme,
            |m| m.recall,
        )
        .unwrap_or(0.0);
        memdos_bench::shape(
            &format!("Fig. 9 {} recall", scheme.name()),
            median >= 0.99,
            format!("overall median recall {:.2} (paper: 1.00)", median),
        );
    }
    for scheme in [Scheme::SdsB, Scheme::SdsP] {
        let median = memdos_bench::median_where(
            &cells,
            |c| c.scheme == scheme && c.app.is_periodic(),
            |m| m.recall,
        )
        .unwrap_or(0.0);
        memdos_bench::shape(
            &format!("Fig. 9 {} recall on periodic apps", scheme.name()),
            median >= 0.99,
            format!("median recall {:.2} (paper: 1.00)", median),
        );
    }
}
