//! Figure 18 — sensitivity of the SDS/P recomputation step ΔW_P
//! (FaceNet, LLC cleansing attack).
//!
//! Paper expectations: accuracy does not change with ΔW_P; delay grows
//! with ΔW_P because the minimum delay is `H_P · ΔW_P · ΔW · T_PCM`.
//! Since DFT-ACF cost is negligible, small ΔW_P (5–10) is recommended.

use memdos_attacks::AttackKind;
use memdos_bench::sensitivity::{median_delay, median_recall, print_sweep, sweep, SweepDetector};
use memdos_core::config::SdsParams;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig18_sens_dwp");
    let stages = memdos_bench::scale();
    let steps = [5usize, 10, 15, 20, 25];
    let points: Vec<(String, SdsParams)> = steps
        .iter()
        .map(|&s| {
            let mut p = SdsParams::default();
            p.sdsp.step_ma = s;
            (format!("{s}"), p)
        })
        .collect();
    let result = sweep(
        Application::FaceNet,
        AttackKind::LlcCleansing,
        stages,
        memdos_bench::runs(),
        SweepDetector::SdsP,
        &points,
    );
    print_sweep("Figure 18: sensitivity of ΔW_P (FaceNet, SDS/P)", "ΔW_P", &result, &stages);

    let accurate = result.iter().all(|p| median_recall(p) >= 0.9);
    memdos_bench::shape(
        "Fig. 18 accuracy insensitive to ΔW_P",
        accurate,
        "recall ≈ 1 at every ΔW_P".to_string(),
    );
    let d_first = median_delay(&result[0], &stages);
    let d_last = median_delay(&result[result.len() - 1], &stages);
    memdos_bench::shape(
        "Fig. 18 delay grows with ΔW_P",
        d_last >= d_first,
        format!("delay {:.1} s at ΔW_P=5 vs {:.1} s at ΔW_P=25", d_first, d_last),
    );
}
