//! Figure 3 — database applications (Hive) under both memory-DoS attacks (§3.3).
//!
//! Regenerates the paper's Figure 3 panels: 60 s of benign execution
//! followed by 60 s under the bus-locking attack (AccessNum panel) or the
//! LLC-cleansing attack (MissNum panel), rendered as per-second
//! sparklines with the Observation 1/2 summary for every application.

use memdos_bench::figures::figure;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig03_db_traces");
    figure(
        "Figure 3 — database applications (Hive)",
        &[Application::Aggregation, Application::Join, Application::Scan,],
        0x3F16,
    );
}
