//! Figure 11 — detection delay under both attacks, for every application.
//!
//! Paper expectations: SDS detects within 15–30 s for all applications;
//! SDS/P's delay is ≈10 s larger than SDS/B's (DFT-ACF needs `H_P · ΔW_P`
//! MA windows). The paper reports 20–50 s for KStest on its real testbed;
//! in this cleaner simulated setting every post-attack KS round rejects
//! decisively, so the baseline reaches its protocol floor (≈4·L_M = 8 s)
//! on the applications where it works at all — and reports near-zero
//! delay on the applications where it was already falsely alarming when
//! the attack launched (see the Fig. 10 specificity collapse).

use memdos_attacks::AttackKind;
use memdos_metrics::experiment::Scheme;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig11_delay");
    let stages = memdos_bench::scale();
    let cells = memdos_bench::accuracy_sweep(
        &Application::ALL,
        &AttackKind::ALL,
        stages,
        memdos_bench::runs(),
    );
    let table = memdos_bench::metric_table(
        "Figure 11: detection delay in seconds (median [p10, p90]; undetected runs censored at the stage length)",
        &cells,
        |c| c.delay(&stages),
        1,
    );
    println!("{table}");

    let delay_of = |s: Scheme| {
        memdos_bench::median_where(
            &cells,
            |c| c.scheme == s,
            |m| m.delay_secs.unwrap_or(stages.attack_ticks as f64 * 0.01),
        )
        .unwrap_or(f64::NAN)
    };
    let sds = delay_of(Scheme::Sds);
    memdos_bench::shape(
        "Fig. 11 SDS delay range",
        (14.0..=31.0).contains(&sds),
        format!("overall median {:.1} s (paper: 15–30 s)", sds),
    );
    let b = memdos_bench::median_where(
        &cells,
        |c| c.scheme == Scheme::SdsB && c.app.is_periodic(),
        |m| m.delay_secs.unwrap_or(stages.attack_ticks as f64 * 0.01),
    )
    .unwrap_or(f64::NAN);
    let p = memdos_bench::median_where(
        &cells,
        |c| c.scheme == Scheme::SdsP && c.app.is_periodic(),
        |m| m.delay_secs.unwrap_or(stages.attack_ticks as f64 * 0.01),
    )
    .unwrap_or(f64::NAN);
    memdos_bench::shape(
        "Fig. 11 SDS/P slower than SDS/B on periodic apps",
        p > b + 4.0,
        format!("SDS/P {:.1} s vs SDS/B {:.1} s (paper: ≈10 s larger)", p, b),
    );
}
