//! Figure 10 — specificity of SDS, SDS/B, SDS/P and KStest under both
//! attacks, for every application.
//!
//! Paper expectations: "the specificity that SDS achieves is around
//! 90–100 %, while KStest only achieves ... around 30–80 % due to many
//! false positives"; for the periodic applications SDS/B reaches 94–97 %
//! and SDS/P 93–94 %, and the combined SDS improves on both.

use memdos_attacks::AttackKind;
use memdos_metrics::experiment::Scheme;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig10_specificity");
    let stages = memdos_bench::scale();
    let cells = memdos_bench::accuracy_sweep(
        &Application::ALL,
        &AttackKind::ALL,
        stages,
        memdos_bench::runs(),
    );
    let table = memdos_bench::metric_table(
        "Figure 10: specificity (median [p10, p90])",
        &cells,
        |c| c.specificity(),
        2,
    );
    println!("{table}");

    let sds = memdos_bench::median_where(&cells, |c| c.scheme == Scheme::Sds, |m| m.specificity)
        .unwrap_or(0.0);
    let ks =
        memdos_bench::median_where(&cells, |c| c.scheme == Scheme::KsTest, |m| m.specificity)
            .unwrap_or(0.0);
    memdos_bench::shape(
        "Fig. 10 SDS specificity",
        sds >= 0.9,
        format!("overall median {:.2} (paper: 0.90–1.00)", sds),
    );
    memdos_bench::shape(
        "Fig. 10 SDS beats KStest",
        sds > ks + 0.1,
        format!("SDS {:.2} vs KStest {:.2} (paper: 20–65 pp better)", sds, ks),
    );

    // Periodic applications: SDS >= each standalone scheme.
    let periodic = |s: Scheme| {
        memdos_bench::median_where(
            &cells,
            |c| c.scheme == s && c.app.is_periodic(),
            |m| m.specificity,
        )
        .unwrap_or(0.0)
    };
    let (p_sds, p_b, p_p) = (periodic(Scheme::Sds), periodic(Scheme::SdsB), periodic(Scheme::SdsP));
    memdos_bench::shape(
        "Fig. 10 combined SDS vs standalone schemes (periodic apps)",
        p_sds >= p_b && p_sds >= p_p,
        format!("SDS {:.2} vs SDS/B {:.2} vs SDS/P {:.2}", p_sds, p_b, p_p),
    );
}
