//! Figure 16 — sensitivity of the sliding step size ΔW (k-means,
//! bus-locking attack).
//!
//! Paper expectations: accuracy does not change with ΔW; detection delay
//! grows with ΔW, because the minimum delay is `H_C · ΔW · T_PCM`.

use memdos_attacks::AttackKind;
use memdos_bench::sensitivity::{median_delay, median_recall, median_specificity, print_sweep, sweep, SweepDetector};
use memdos_core::config::SdsParams;
use memdos_workloads::catalog::Application;

fn main() {
    memdos_bench::banner("fig16_sens_dw");
    let stages = memdos_bench::scale();
    let dws = [20usize, 50, 100, 150, 200];
    let points: Vec<(String, SdsParams)> = dws
        .iter()
        .map(|&dw| {
            let mut p = SdsParams::default();
            p.sdsb.step = dw;
            p.sdsp.step = dw;
            (format!("{dw}"), p)
        })
        .collect();
    let result = sweep(
        Application::KMeans,
        AttackKind::BusLocking,
        stages,
        memdos_bench::runs(),
        SweepDetector::Sds,
        &points,
    );
    print_sweep("Figure 16: sensitivity of ΔW (k-means)", "ΔW", &result, &stages);

    let accurate = result
        .iter()
        .all(|p| median_recall(p) >= 0.99 && median_specificity(p) >= 0.95);
    memdos_bench::shape(
        "Fig. 16 accuracy insensitive to ΔW",
        accurate,
        "recall and specificity ≈ 1 at every ΔW".to_string(),
    );
    let d_first = median_delay(&result[0], &stages);
    let d_last = median_delay(&result[result.len() - 1], &stages);
    memdos_bench::shape(
        "Fig. 16 delay grows with ΔW",
        d_last > d_first,
        format!("delay {:.1} s at ΔW=20 vs {:.1} s at ΔW=200", d_first, d_last),
    );
}
