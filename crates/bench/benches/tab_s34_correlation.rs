//! §3.4 — the correlation-based negative result.
//!
//! Before designing SDS the authors explored spectral coherence,
//! cross-correlation and Pearson correlation between cache statistics at
//! different times, expecting attacks to *decrease* the correlations —
//! and found that "these approaches are not useful for detecting both
//! attacks since the correlations among the cache-related statistics do
//! not show any decreasing trend after the attacks are launched".
//!
//! This target reproduces the exploration: for each application it
//! correlates 10-second AccessNum segments against neighbouring segments
//! before and after the attack launch, with all three methods.

use memdos_attacks::AttackKind;
use memdos_metrics::experiment::capture_trace;
use memdos_metrics::report::Table;
use memdos_stats::correlate::{max_cross_correlation, mean_coherence, pearson};
use memdos_workloads::catalog::Application;

/// Mean pairwise statistic over consecutive 10 s segments of a series.
fn segment_stat(series: &[f64], f: impl Fn(&[f64], &[f64]) -> f64) -> f64 {
    let seg = 1_000; // 10 s of ticks
    let segments: Vec<&[f64]> = series.chunks(seg).filter(|c| c.len() == seg).collect();
    let mut acc = 0.0;
    let mut n = 0;
    for pair in segments.windows(2) {
        acc += f(pair[0], pair[1]);
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        acc / n as f64
    }
}

fn main() {
    memdos_bench::banner("tab_s34_correlation");
    let apps = [
        Application::Bayes,
        Application::KMeans,
        Application::Pca,
        Application::Aggregation,
        Application::TeraSort,
        Application::FaceNet,
    ];
    let mut decreasing = 0usize;
    let mut total = 0usize;
    for attack in AttackKind::ALL {
        let mut table = Table::new(
            format!("§3.4 correlations of AccessNum segments, {attack} attack (before -> after)"),
            &["app", "pearson", "max cross-corr", "coherence"],
        );
        for app in apps {
            let trace = capture_trace(app, attack, 6_000, 6_000, 0x534);
            let access: Vec<f64> = trace.iter().map(|s| s.0).collect();
            let (pre, post) = access.split_at(6_000);
            let fmt = |f: &dyn Fn(&[f64], &[f64]) -> f64| {
                let b = segment_stat(pre, f);
                let a = segment_stat(post, f);
                (b, a, format!("{b:.2} -> {a:.2}"))
            };
            let (pb, pa, pstr) = fmt(&|x, y| pearson(x, y).unwrap_or(f64::NAN));
            let (xb, xa, xstr) =
                fmt(&|x, y| max_cross_correlation(x, y, 200).unwrap_or(f64::NAN));
            let (cb, ca, cstr) = fmt(&|x, y| mean_coherence(x, y, 128).unwrap_or(f64::NAN));
            for (b, a) in [(pb, pa), (xb, xa), (cb, ca)] {
                total += 1;
                // "Decreasing trend" = a clear drop after the attack.
                if a < b - 0.15 {
                    decreasing += 1;
                }
            }
            table.push(vec![app.name().to_string(), pstr, xstr, cstr]);
        }
        println!("{table}");
    }
    memdos_bench::shape(
        "§3.4 correlations show no reliable decreasing trend",
        (decreasing as f64) < 0.3 * total as f64,
        format!(
            "{decreasing}/{total} app/method/attack combinations dropped by >0.15 \
             (paper: correlations are not a usable detection signal)"
        ),
    );
}
