//! The min-heap discrete-event scheduler backing [`crate::server`].
//!
//! Instead of polling every component every cycle, each component — the
//! per-tick monitor, the PCM sampler and every VM — schedules its own
//! next wake-up in an [`EventQueue`]: a `BinaryHeap`-backed min-heap
//! keyed by `(next_tick, ComponentId)`. Idle VMs (long compute stalls,
//! parked attackers), a quiescent bus and untouched LLC sets are simply
//! *absent* from the heap until their wake-up cycle arrives, so the
//! engine's cost scales with the number of events, not with the number
//! of simulated cycles.
//!
//! ## Determinism
//!
//! The heap key is the pair `(time, ComponentId)`. Two events scheduled
//! for the same cycle therefore always pop in `ComponentId` order, no
//! matter in which order they were inserted — this is the tie-break the
//! cycle-budgeted reference loop in `server.rs` applies implicitly
//! (lowest VM-table index first), and it is what makes the event engine
//! byte-identical to it. [`ComponentId::SAMPLER`] and
//! [`ComponentId::MONITOR`] sort before every VM so the fixed per-tick
//! clock-divider events keep their place relative to VM operations.
//!
//! The queue is single-owner state inside one `Server` (no sharing, no
//! interior mutability), so it is compatible with the L8 shared-state
//! lint policy as-is.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identity of a schedulable component of one simulated server.
///
/// The numeric value doubles as the deterministic tie-break for
/// simultaneous events: smaller ids run first. Fixed infrastructure
/// components take the smallest ids; VMs follow in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The monitoring process (fires once per tick, at the tick start).
    pub const MONITOR: ComponentId = ComponentId(0);
    /// The PCM sampler (fires once per tick, at the tick boundary).
    pub const SAMPLER: ComponentId = ComponentId(1);
    /// First id assigned to a VM; VM *k* in table order is `VM_BASE + k`.
    const VM_BASE: u32 = 2;

    /// The component id of the VM at table index `index`.
    pub fn vm(index: usize) -> ComponentId {
        ComponentId(Self::VM_BASE + index as u32)
    }

    /// The VM-table index of this component, if it is a VM.
    pub fn vm_index(self) -> Option<usize> {
        self.0.checked_sub(Self::VM_BASE).map(|i| i as usize)
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ComponentId::SAMPLER => write!(f, "sampler"),
            ComponentId::MONITOR => write!(f, "monitor"),
            other => match other.vm_index() {
                Some(i) => write!(f, "vm[{i}]"),
                None => write!(f, "component{}", other.0),
            },
        }
    }
}

/// A time-ordered queue of component wake-ups.
///
/// Thin wrapper around `BinaryHeap<Reverse<(u64, ComponentId)>>`: `pop`
/// returns the earliest event, ties broken by smallest [`ComponentId`].
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, ComponentId)>>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity) }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events, keeping the allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Schedules `component` to wake at absolute cycle `time`.
    #[inline]
    pub fn schedule(&mut self, time: u64, component: ComponentId) {
        self.heap.push(Reverse((time, component)));
    }

    /// The earliest pending event, without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(u64, ComponentId)> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Removes and returns the earliest pending event.
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, ComponentId)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Replaces the earliest pending event with `(time, component)` and
    /// returns the replaced event, restoring the heap order with a
    /// single sift instead of the two a `pop` + `schedule` pair costs.
    ///
    /// This is the run-ahead *hand-off* primitive: when the running VM's
    /// next wake-up is later than the queue head, the engine swaps the
    /// two in place — equivalent to scheduling the runner and popping
    /// the head, because inserting an event later than the head cannot
    /// change which event is earliest.
    #[inline]
    pub fn replace_min(
        &mut self,
        time: u64,
        component: ComponentId,
    ) -> Option<(u64, ComponentId)> {
        self.heap.peek_mut().map(|mut top| {
            let Reverse(old) = std::mem::replace(&mut *top, Reverse((time, component)));
            old
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_stats::rng::Rng;

    #[test]
    fn component_id_roundtrip_and_reserved_ids() {
        assert_eq!(ComponentId::vm(0).vm_index(), Some(0));
        assert_eq!(ComponentId::vm(8).vm_index(), Some(8));
        assert_eq!(ComponentId::SAMPLER.vm_index(), None);
        assert_eq!(ComponentId::MONITOR.vm_index(), None);
        assert!(ComponentId::MONITOR < ComponentId::SAMPLER);
        assert!(ComponentId::SAMPLER < ComponentId::vm(0));
        assert!(ComponentId::vm(0) < ComponentId::vm(1));
    }

    #[test]
    fn component_id_display() {
        assert_eq!(ComponentId::SAMPLER.to_string(), "sampler");
        assert_eq!(ComponentId::MONITOR.to_string(), "monitor");
        assert_eq!(ComponentId::vm(3).to_string(), "vm[3]");
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, ComponentId::vm(0));
        q.schedule(10, ComponentId::vm(1));
        q.schedule(20, ComponentId::vm(2));
        assert_eq!(q.peek(), Some((10, ComponentId::vm(1))));
        assert_eq!(q.pop(), Some((10, ComponentId::vm(1))));
        assert_eq!(q.pop(), Some((20, ComponentId::vm(2))));
        assert_eq!(q.pop(), Some((30, ComponentId::vm(0))));
        assert_eq!(q.pop(), None);
    }

    /// Satellite: simultaneous events (equal `next_tick`) must pop in
    /// `ComponentId` order regardless of insertion order.
    #[test]
    fn equal_time_events_pop_in_component_order_for_any_insertion_order() {
        let mut rng = Rng::new(0xE7E41);
        let n = 9usize;
        for _round in 0..200 {
            // A random permutation of components 0..n via seeded
            // Fisher-Yates, all scheduled for the same cycle.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let mut q = EventQueue::new();
            for &c in &order {
                q.schedule(77, ComponentId::vm(c));
            }
            // Mix in the fixed infrastructure components too.
            q.schedule(77, ComponentId::MONITOR);
            q.schedule(77, ComponentId::SAMPLER);
            let popped: Vec<ComponentId> =
                std::iter::from_fn(|| q.pop().map(|(_, c)| c)).collect();
            let mut expected = vec![ComponentId::MONITOR, ComponentId::SAMPLER];
            expected.extend((0..n).map(ComponentId::vm));
            assert_eq!(popped, expected, "insertion order {order:?}");
        }
    }

    /// `replace_min` must be indistinguishable from `schedule` followed
    /// by `pop` whenever the inserted key is strictly greater than the
    /// head's — the only discipline under which the engine uses it (the
    /// run-ahead loop hands off exactly when `head < (next, comp)`).
    #[test]
    fn replace_min_matches_schedule_then_pop() {
        let mut rng = Rng::new(0xC0FFEE);
        for _round in 0..100 {
            let mut fast = EventQueue::new();
            let mut slow = EventQueue::new();
            for c in 0..6 {
                let t = rng.next_below(50);
                fast.schedule(t, ComponentId::vm(c));
                slow.schedule(t, ComponentId::vm(c));
            }
            for _step in 0..200 {
                let (ht, hc) = fast.peek().expect("queues stay populated");
                // Same time with a larger component id, or a later time:
                // both are `> head` in key order, like a real hand-off.
                let (t, c) = if rng.chance(0.2) {
                    (ht, ComponentId(hc.0 + 1 + rng.next_below(4) as u32))
                } else {
                    (ht + 1 + rng.next_below(40), ComponentId(2 + rng.next_below(8) as u32))
                };
                let got = fast.replace_min(t, c);
                slow.schedule(t, c);
                let want = slow.pop();
                assert_eq!(got, want);
                assert_eq!(fast.len(), slow.len());
            }
            let a: Vec<_> = std::iter::from_fn(|| fast.pop()).collect();
            let b: Vec<_> = std::iter::from_fn(|| slow.pop()).collect();
            assert_eq!(a, b);
        }
        assert_eq!(EventQueue::new().replace_min(5, ComponentId::vm(0)), None);
    }

    /// Satellite: heap-invariant property test — under the scheduler
    /// discipline (components only schedule wake-ups at or after the
    /// current time), popped event times never decrease across a run.
    #[test]
    fn popped_event_times_never_decrease() {
        let mut rng = Rng::new(0x5EEDED);
        for round in 0..50 {
            let mut q = EventQueue::with_capacity(16);
            let mut now = 0u64;
            let mut last_popped = 0u64;
            // Seed a few initial wake-ups.
            for c in 0..4 {
                q.schedule(rng.next_below(100), ComponentId::vm(c));
            }
            for _step in 0..2000 {
                if !q.is_empty() && (q.len() >= 12 || rng.chance(0.6)) {
                    let (t, c) = q.pop().expect("non-empty");
                    assert!(
                        t >= last_popped,
                        "round {round}: time went backwards: {t} after {last_popped}"
                    );
                    last_popped = t;
                    now = t;
                    // The popped component usually reschedules itself
                    // later, like a VM finishing an operation does.
                    if rng.chance(0.8) {
                        q.schedule(now + rng.next_below(500), c);
                    }
                } else {
                    // A fresh component joins at or after the current time.
                    let c = ComponentId(2 + rng.next_below(32) as u32);
                    q.schedule(now + rng.next_below(300), c);
                }
            }
        }
    }
}
