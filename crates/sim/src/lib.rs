//! # memdos-sim
//!
//! A discrete-time simulator of a multi-tenant cloud server, built as the
//! experimental substrate for reproducing *"Impact of Memory DoS Attacks on
//! Cloud Applications and Real-Time Detection Schemes"* (ICPP '20).
//!
//! The paper's testbed is an Intel Xeon E5-2660 (14 cores, 35 MB 20-way
//! LLC) running KVM with nine Ubuntu VMs and the Intel PCM counter tool.
//! This crate models the parts of that machine the attacks and detectors
//! interact with:
//!
//! * [`cache`] — a set-associative last-level cache shared by all VMs,
//!   with true-LRU replacement and per-VM (domain) access/miss counters.
//! * [`bus`] — the socket-internal memory bus, including the **atomic bus
//!   lock** semantics that the bus-locking attack exploits: while an
//!   atomic operation holds the bus, no other VM's memory operation can
//!   proceed.
//! * [`fleet`] — the fleet scenario generator: thousands of
//!   template-stamped tenant VMs with staggered arrivals, zipf-skewed
//!   activity and seeded churn, streamed in deterministic timeline
//!   order for engine-scale experiments.
//! * [`program`] — the [`program::VmProgram`] trait: a guest workload is a
//!   generator of memory operations (cache accesses, bus-locking atomics,
//!   pure compute).
//! * [`hypervisor`] — VM lifecycle and scheduling, including the
//!   **execution throttling** primitive the KStest baseline needs to
//!   collect clean reference samples.
//! * [`pcm`] — the per-tick counter sampler standing in for Intel PCM:
//!   every `T_PCM` it reports each VM's `AccessNum` and `MissNum`.
//! * [`server`] — the engine. One tick = one `T_PCM` interval (10 ms of
//!   simulated time by default). Within a tick, every running VM executes
//!   on its own core until its cycle budget is exhausted; VMs are
//!   interleaved in global-cycle order so contention on the shared LLC
//!   and bus is causally consistent.
//! * [`rng`] — a small deterministic PRNG (SplitMix64 seeding +
//!   xoshiro256++) so every experiment is reproducible from a `u64` seed.
//!
//! ## Fidelity notes (what is and is not modelled)
//!
//! The detection signal in the paper is *statistical*: per-10 ms LLC
//! access and miss counts. The simulator therefore models, faithfully:
//! set-conflict evictions between tenants (the cleansing attack's lever),
//! exclusive bus locking (the locking attack's lever), and the slowdown
//! both impose on victim progress (which dilates the period of batch
//! workloads — Observation 2 of the paper). It does not model
//! instruction-level pipelines, prefetchers, or DRAM bank scheduling;
//! those affect absolute magnitudes, not the shape of the statistics the
//! detectors consume.
//!
//! ## Example
//!
//! ```rust
//! use memdos_sim::program::{MemOp, ProgramCtx, VmProgram};
//! use memdos_sim::server::{Server, ServerConfig};
//!
//! /// A trivial guest that streams over 1000 cache lines.
//! struct Streamer {
//!     next: u64,
//! }
//!
//! impl VmProgram for Streamer {
//!     fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
//!         self.next = (self.next + 1) % 1000;
//!         MemOp::read(self.next)
//!     }
//!     fn name(&self) -> &str {
//!         "streamer"
//!     }
//! }
//!
//! let mut server = Server::new(ServerConfig::default());
//! let vm = server.add_vm("vm-1", Box::new(Streamer { next: 0 }));
//! let report = server.tick();
//! assert!(report.sample(vm).unwrap().accesses > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod event;
pub mod fleet;
pub mod hypervisor;
pub mod pcm;
pub mod program;
pub mod server;

/// Deterministic PRNG and samplers, re-exported from `memdos-stats` so the
/// historical `memdos_sim::rng::Rng` paths keep working.
pub use memdos_stats::rng;

pub use hypervisor::VmId;
pub use program::{AccessOutcome, MemOp, ProgramCtx, VmProgram};
pub use server::{Server, ServerConfig, TickReport};
