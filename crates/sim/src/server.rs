//! The discrete-event server engine.
//!
//! One engine tick is one `T_PCM` sampling interval (10 ms of simulated
//! time by default). Within a tick every *running* VM executes on its own
//! core until its cycle budget for the tick is exhausted. VMs are
//! interleaved in **global-cycle order** (the VM with the smallest
//! next-free cycle executes its next operation first), which makes
//! contention on the shared bus causally consistent: any bus lock visible
//! to an operation at cycle `t` was placed by an operation that logically
//! preceded `t`.
//!
//! ## Scheduling
//!
//! The engine is driven by the min-heap event queue in [`crate::event`]:
//! every component schedules its own next wake-up keyed by
//! `(cycle, ComponentId)`. The per-tick clock dividers — the monitoring
//! process at the tick start, the PCM sampler at the tick end — and every
//! VM's next operation are all events in the same queue, so a VM sleeping
//! through a long compute stall (an idle utility, a parked attacker
//! waiting for its [`attack window`](ComponentId)) costs one heap entry
//! instead of being polled every cycle. A *run-ahead* fast path keeps
//! executing the VM that just ran while it remains the earliest event,
//! avoiding heap traffic for back-to-back operations.
//!
//! The original cycle-budgeted scan loop is retained, byte-for-byte
//! equivalent, as [`Server::tick_reference`] behind the `reference-tick`
//! feature (always available to tests); the seeded equivalence suite at
//! the bottom of this file pins the two engines to **byte-identical**
//! PCM sample streams and counters across randomized configurations.
//!
//! ## Cost model
//!
//! | operation | cost (cycles) |
//! |---|---|
//! | LLC hit | `hit_cycles` (default 30) |
//! | LLC miss | `miss_cycles` (default 300) — includes the DRAM round-trip |
//! | atomic (bus-locking) op | `atomic_lock_cycles` (default 800), bus held exclusively |
//! | compute | as requested by the program |
//!
//! An ordinary access additionally stalls until the bus is free. An
//! operation that crosses the tick boundary simply completes during the
//! next tick (the VM's `next_free` cycle carries over).
//!
//! ## Monitoring overhead
//!
//! A detection system is not free: reading uncore counters and running
//! the analysis steals cycles from the cores ("performance overhead",
//! Fig. 12). [`ServerConfig::monitor_tax_cycles`] models this as a
//! per-tick, per-VM cycle tax, and [`Server::set_monitor_load`] lets the
//! monitoring process issue its own cache traffic (domain 0), which
//! pollutes the LLC exactly like any tenant. The KStest baseline's much
//! larger *throttling* overhead emerges naturally from
//! [`Server::pause_all_except`].

use crate::bus::{Bus, Dram};
use crate::cache::{CacheGeometry, DomainId, Llc};
use crate::event::{ComponentId, EventQueue};
use crate::hypervisor::{Hypervisor, Vm, VmId, VmState};
use crate::pcm::PcmSample;
use crate::program::{AccessOutcome, MemOp, ProgramCtx, VmProgram};
use crate::rng::Rng;

/// Configuration of a simulated server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// LLC geometry.
    pub geometry: CacheGeometry,
    /// CPU cycles available to each core per tick.
    pub tick_cycles: u64,
    /// Cost of an LLC hit.
    pub hit_cycles: u64,
    /// Cost of an LLC miss (includes the DRAM access).
    pub miss_cycles: u64,
    /// Bus-lock duration of one atomic operation.
    pub atomic_lock_cycles: u64,
    /// Simulated seconds per tick (the paper's `T_PCM`, default 0.01 s).
    pub t_pcm_secs: f64,
    /// Root seed; every VM derives its private RNG stream from it.
    pub seed: u64,
    /// Per-tick, per-VM cycle tax imposed by an active monitoring system
    /// (0 = no monitoring).
    pub monitor_tax_cycles: u64,
    /// DRAM channel service time per LLC miss (0 = infinite bandwidth).
    /// Misses queue behind each other on the shared channel, so a tenant
    /// that saturates DRAM slows every other tenant's misses.
    pub dram_service_cycles: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            geometry: CacheGeometry::default(),
            tick_cycles: 200_000,
            hit_cycles: 30,
            miss_cycles: 300,
            atomic_lock_cycles: 800,
            t_pcm_secs: 0.01,
            seed: 0x5EED,
            monitor_tax_cycles: 0,
            dram_service_cycles: 40,
        }
    }
}

impl ServerConfig {
    /// Returns a copy with a different seed — the common way experiment
    /// runners derive per-run configurations.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The PCM output of one tick: one sample per VM, in `VmId` order.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Index of the tick that just completed.
    pub tick: u64,
    /// Simulated time at the *end* of this tick, in seconds.
    pub time_secs: f64,
    /// One sample per VM.
    pub samples: Vec<PcmSample>,
}

impl TickReport {
    /// The sample of one VM, if it exists.
    pub fn sample(&self, vm: VmId) -> Option<&PcmSample> {
        self.samples.get(vm.0 as usize)
    }
}

/// A simulated multi-tenant cloud server.
pub struct Server {
    cfg: ServerConfig,
    cache: Llc,
    bus: Bus,
    dram: Dram,
    hv: Hypervisor,
    root_rng: Rng,
    tick: u64,
    monitor_domain: DomainId,
    monitor_rng: Rng,
    /// Cache lines the monitoring process touches per tick (pollution).
    monitor_load_lines: u64,
    /// The discrete-event wake-up queue, rebuilt each tick from the
    /// running set (pause/resume only happens at tick boundaries).
    queue: EventQueue,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tick", &self.tick)
            .field("vms", &self.hv.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server with no VMs.
    pub fn new(cfg: ServerConfig) -> Self {
        let mut cache = Llc::new(cfg.geometry);
        let monitor_domain = cache.register_domain();
        debug_assert_eq!(monitor_domain, DomainId(0));
        let mut root_rng = Rng::new(cfg.seed);
        let monitor_rng = root_rng.fork(u64::MAX);
        Server {
            cache,
            bus: Bus::new(),
            dram: Dram::new(cfg.dram_service_cycles),
            hv: Hypervisor::new(),
            cfg,
            root_rng,
            tick: 0,
            monitor_domain,
            monitor_rng,
            monitor_load_lines: 0,
            queue: EventQueue::with_capacity(16),
        }
    }

    /// Configuration the server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Adds a VM running `program`; returns its id.
    pub fn add_vm(&mut self, name: impl Into<String>, program: Box<dyn VmProgram>) -> VmId {
        self.add_vm_parallel(name, program, 1)
    }

    /// Adds a VM with memory-level parallelism: its ordinary accesses and
    /// compute advance its core clock at `1/parallelism` of their cost,
    /// modelling a guest with several vCPUs issuing memory requests in
    /// parallel (the paper's attack VM runs a multi-threaded cleanser).
    /// Atomic bus-locking operations are serial and never accelerated.
    pub fn add_vm_parallel(
        &mut self,
        name: impl Into<String>,
        program: Box<dyn VmProgram>,
        parallelism: u8,
    ) -> VmId {
        self.add_vm_parallel_from(name, program, parallelism, 0)
    }

    /// Like [`Server::add_vm_parallel`], but the parallelism only takes
    /// effect from tick `from_tick`; before that the VM runs serially.
    /// Models a guest whose worker threads spin up on a launch command —
    /// a scheduled attack VM idles single-threaded until its activation
    /// window, so its pre-launch trace does not depend on the payload's
    /// thread count.
    pub fn add_vm_parallel_from(
        &mut self,
        name: impl Into<String>,
        program: Box<dyn VmProgram>,
        parallelism: u8,
        from_tick: u64,
    ) -> VmId {
        let domain = self.cache.register_domain();
        let stream = domain.0 as u64;
        let rng = self.root_rng.fork(stream);
        self.hv.add_vm(name, program, domain, rng, parallelism, from_tick)
    }

    /// Read-only access to the hypervisor (VM table).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Pauses every VM except `protected` (execution throttling).
    pub fn pause_all_except(&mut self, protected: VmId) {
        self.hv.pause_all_except(protected);
    }

    /// Pauses one VM.
    pub fn pause(&mut self, vm: VmId) {
        self.hv.pause(vm);
    }

    /// Resumes one VM.
    pub fn resume(&mut self, vm: VmId) {
        self.hv.resume(vm);
    }

    /// Resumes all VMs.
    pub fn resume_all(&mut self) {
        self.hv.resume_all();
    }

    /// Execution-throttles one VM (parallelism clamped to 1) — the
    /// first rung of the respond mitigation ladder. Returns `false` if
    /// already throttled.
    pub fn throttle_vm(&mut self, vm: VmId) -> bool {
        self.hv.throttle(vm)
    }

    /// Lifts an execution throttle, restoring registered parallelism.
    pub fn unthrottle_vm(&mut self, vm: VmId) -> bool {
        self.hv.unthrottle(vm)
    }

    /// Sets the number of cache lines the monitoring process touches per
    /// tick (LLC pollution caused by the detection system itself).
    pub fn set_monitor_load(&mut self, lines_per_tick: u64) {
        self.monitor_load_lines = lines_per_tick;
    }

    /// Sets the per-tick, per-VM monitoring cycle tax.
    pub fn set_monitor_tax(&mut self, cycles: u64) {
        self.cfg.monitor_tax_cycles = cycles;
    }

    /// Index of the next tick to execute.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Simulated time at the start of the next tick, in seconds.
    pub fn time_secs(&self) -> f64 {
        self.tick as f64 * self.cfg.t_pcm_secs
    }

    /// Work units completed by a VM's guest program.
    pub fn vm_work(&self, vm: VmId) -> u64 {
        self.hv.vm(vm).work_completed()
    }

    /// Cumulative bus-lock statistics `(locks, locked_cycles)`.
    pub fn bus_stats(&self) -> (u64, u64) {
        (self.bus.total_locks(), self.bus.total_locked_cycles())
    }

    /// Mean DRAM queueing wait per miss so far, in cycles — a direct
    /// measure of memory-bandwidth contention.
    pub fn dram_mean_wait(&self) -> f64 {
        self.dram.mean_wait_cycles()
    }

    /// Cycle window and monitoring tax of the tick about to execute.
    fn tick_bounds(&self) -> (u64, u64, u64) {
        let start = self.tick * self.cfg.tick_cycles;
        let end = start + self.cfg.tick_cycles;
        (start, end, self.cfg.monitor_tax_cycles.min(self.cfg.tick_cycles))
    }

    /// Monitoring pollution: the analysis process touches its own working
    /// set through the shared LLC, then drains its private counters.
    fn run_monitor(&mut self) {
        for _ in 0..self.monitor_load_lines {
            let line = self.monitor_rng.next_below(1 << 20);
            self.cache.access(self.monitor_domain, line);
        }
        self.cache.drain_counters(self.monitor_domain);
    }

    /// Tick prologue: align each VM's next-free cycle with the tick,
    /// apply the monitoring tax, account paused time.
    fn tick_prologue(&mut self, start: u64, end: u64, tax: u64) {
        for vm in self.hv.vms_mut() {
            match vm.state {
                VmState::Running => {
                    vm.next_free = vm.next_free.max(start + tax);
                }
                VmState::Paused => {
                    vm.paused_ticks += 1;
                    // A paused VM makes no progress; it resumes from the
                    // current simulated time, not from where it stopped.
                    vm.next_free = vm.next_free.max(end);
                }
            }
        }
    }

    /// Tick epilogue: advance the tick counter and drain every domain's
    /// interval counters into PCM samples (what the sampler component
    /// does at its per-tick clock-divider event).
    fn collect_report(&mut self) -> TickReport {
        self.tick += 1;
        let mut samples = Vec::with_capacity(self.hv.len());
        for (id, vm) in self.hv.iter() {
            let domain = vm.domain();
            let c = self.cache.drain_counters(domain);
            samples.push(PcmSample { vm: id, domain, accesses: c.accesses, misses: c.misses });
        }
        TickReport {
            tick: self.tick - 1,
            time_secs: self.tick as f64 * self.cfg.t_pcm_secs,
            samples,
        }
    }

    /// Executes one tick (one `T_PCM` interval) and returns the PCM
    /// samples of every VM.
    ///
    /// Event-driven: the monitor, the PCM sampler and every runnable VM
    /// are wake-up events in a min-heap keyed by `(cycle, ComponentId)`;
    /// the loop pops the earliest event and lets the component run. A VM
    /// keeps executing without heap traffic while it remains the earliest
    /// event (run-ahead), and drops out of the queue entirely once its
    /// budget is spent.
    pub fn tick(&mut self) -> TickReport {
        let (start, end, tax) = self.tick_bounds();
        self.queue.clear();
        self.queue.schedule(start, ComponentId::MONITOR);
        self.queue.schedule(end, ComponentId::SAMPLER);
        self.tick_prologue(start, end, tax);
        for (i, vm) in self.hv.vms_mut().iter().enumerate() {
            if vm.state == VmState::Running && vm.next_free < end {
                self.queue.schedule(vm.next_free, ComponentId::vm(i));
            }
        }
        while let Some((_, comp)) = self.queue.pop() {
            match comp {
                ComponentId::MONITOR => self.run_monitor(),
                ComponentId::SAMPLER => break,
                _ => {
                    let Some(mut idx) = comp.vm_index() else { continue };
                    let mut comp = comp;
                    // Split the server into disjoint field borrows once
                    // per pop so the run-ahead loop below re-steps the
                    // same VM without re-fetching it (or re-borrowing
                    // `self`) on every operation.
                    let tick = self.tick;
                    let Server { cfg, cache, bus, dram, hv, queue, .. } = self;
                    let vms = hv.vms_mut();
                    'vm: loop {
                        let Some(vm) = vms.get_mut(idx) else { break 'vm };
                        // The queue is untouched while this VM runs
                        // ahead, so the head is segment-invariant: fold
                        // the hand-off condition `head < (next, comp)`
                        // and the budget bound into ONE cycle limit, so
                        // the per-op loop test is a single compare. A VM
                        // may run through a head at the same cycle iff
                        // its component id is smaller (the deterministic
                        // tie-break), hence the `+ 1`.
                        let limit = match queue.peek() {
                            Some((t, c)) if t < end => {
                                t.saturating_add((comp < c) as u64).min(end)
                            }
                            _ => end,
                        };
                        let par = vm.parallelism_at(tick);
                        let mut next =
                            Self::step_vm_inner(cfg, cache, bus, dram, vm, tick, end, par);
                        while next < limit {
                            next = Self::step_vm_inner(cfg, cache, bus, dram, vm, tick, end, par);
                        }
                        if next >= end {
                            // Budget spent: the VM drops out of the tick.
                            break 'vm;
                        }
                        // Another component wakes first: swap places with
                        // it in a single heap sift and keep running as
                        // that component (hand-off).
                        let Some((t2, c2)) = queue.replace_min(next, comp) else { break 'vm };
                        match c2.vm_index() {
                            Some(i2) => {
                                comp = c2;
                                idx = i2;
                            }
                            None => {
                                // Non-VM wake-up (cannot happen mid-tick
                                // under the monitor-first / sampler-at-
                                // `end` schedule, but stay defensive):
                                // put it back and return to the outer
                                // pop.
                                queue.schedule(t2, c2);
                                break 'vm;
                            }
                        }
                    }
                }
            }
        }
        self.collect_report()
    }

    /// Snapshots the entire server — cache, bus, DRAM, RNG streams, and
    /// every VM's program state — so a shared simulation prefix can be
    /// forked into independent continuations (e.g. one benign warm-up
    /// continued under several attack variants, byte-identical to
    /// running each variant from scratch). Returns `None` when any guest
    /// program does not support [`VmProgram::clone_box`].
    pub fn try_clone(&self) -> Option<Server> {
        Some(Server {
            cfg: self.cfg,
            cache: self.cache.clone(),
            bus: self.bus.clone(),
            dram: self.dram.clone(),
            hv: self.hv.try_clone()?,
            root_rng: self.root_rng.clone(),
            tick: self.tick,
            monitor_domain: self.monitor_domain,
            monitor_rng: self.monitor_rng.clone(),
            monitor_load_lines: self.monitor_load_lines,
            queue: self.queue.clone(),
        })
    }

    /// Mutable access to a VM's guest program — the surgical hook fork
    /// flows use to swap a wrapper program's payload in place.
    pub fn program_mut(&mut self, vm: VmId) -> Option<&mut Box<dyn VmProgram>> {
        self.hv.program_mut(vm)
    }

    /// Re-targets a VM's memory-level parallelism. Fork flows that swap
    /// in a different payload use this so the continuation matches the
    /// thread count that payload would have been registered with; the
    /// `from_tick` window set at registration is unchanged, so a call
    /// made while the VM is still in its serial window cannot perturb
    /// already-simulated ticks.
    pub fn set_vm_parallelism(&mut self, vm: VmId, parallelism: u8) {
        if let Some(vm) = self.hv.vms_mut().get_mut(vm.0 as usize) {
            vm.parallelism = parallelism.max(1);
        }
    }

    /// Reference implementation of [`Server::tick`]: the original
    /// cycle-budgeted scan loop that re-selects the minimum `next_free`
    /// VM by linear scan on every operation. Kept (tests always, other
    /// crates via the `reference-tick` feature) as the oracle the event
    /// engine is pinned against — both must produce byte-identical
    /// [`TickReport`] streams and counters from the same initial state.
    #[cfg(any(test, feature = "reference-tick"))]
    pub fn tick_reference(&mut self) -> TickReport {
        let (start, end, tax) = self.tick_bounds();
        self.run_monitor();
        self.tick_prologue(start, end, tax);

        // Main loop: always advance the VM with the smallest next-free
        // cycle that still fits in this tick.
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (i, vm) in self.hv.vms_mut().iter().enumerate() {
                if vm.state == VmState::Running && vm.next_free < end {
                    match best {
                        Some((_, t)) if t <= vm.next_free => {}
                        _ => best = Some((i, vm.next_free)),
                    }
                }
            }
            let Some((idx, _)) = best else { break };
            self.step_vm(idx, end);
        }
        self.collect_report()
    }

    /// Executes `n` ticks, collecting every report.
    pub fn run_collect(&mut self, n: u64) -> Vec<TickReport> {
        (0..n).map(|_| self.tick()).collect()
    }

    /// Executes one operation of the VM at table index `idx`; returns the
    /// VM's new next-free cycle. `end` is the current tick's cycle bound,
    /// used to decide whether a fused op's access half still falls inside
    /// this tick.
    #[inline]
    #[cfg(any(test, feature = "reference-tick"))]
    fn step_vm(&mut self, idx: usize, end: u64) -> u64 {
        let tick = self.tick;
        let Server { cfg, cache, bus, dram, hv, .. } = self;
        let Some(vm) = hv.vms_mut().get_mut(idx) else {
            return u64::MAX;
        };
        let par = vm.parallelism_at(tick);
        Self::step_vm_inner(cfg, cache, bus, dram, vm, tick, end, par)
    }

    /// [`Server::step_vm`] over pre-split borrows, so the event loop's
    /// run-ahead path can step the same VM repeatedly without paying a
    /// table lookup per operation. `par` is the VM's effective
    /// parallelism for this tick ([`Vm::parallelism_at`]) — constant
    /// across a tick, so callers hoist it out of their step loops.
    #[inline]
    fn step_vm_inner(
        cfg: &ServerConfig,
        cache: &mut Llc,
        bus: &mut Bus,
        dram: &mut Dram,
        vm: &mut Vm,
        tick: u64,
        end: u64,
        par: u8,
    ) -> u64 {
        let now = vm.next_free;
        // Second half of a fused `Work` op: the compute part already ran,
        // the access executes now.
        if let Some(line) = vm.pending_line.take() {
            return Self::finish_access(cfg, cache, bus, dram, vm, line, now, par);
        }
        let mut ctx = ProgramCtx {
            rng: &mut vm.rng,
            last_outcome: vm.last_outcome,
            tick,
        };
        let op = vm.program.next_op(&mut ctx);
        match op {
            MemOp::Compute { cycles } => {
                vm.next_free = now + Self::scaled(cycles.max(1) as u64, par);
                vm.next_free
            }
            MemOp::Access { line, .. } => {
                Self::finish_access(cfg, cache, bus, dram, vm, line, now, par)
            }
            MemOp::Work { compute, line, .. } => {
                // Fused compute-then-access. The access's scheduling slot
                // is the cycle the compute finishes at; when that slot is
                // still inside this tick, issue the access in the same
                // engine step (one heap transit instead of two). A slot
                // past the tick bound parks the access instead, so tick
                // attribution of the counters is preserved exactly.
                let slot = now + Self::scaled(compute.max(1) as u64, par);
                if slot < end {
                    Self::finish_access(cfg, cache, bus, dram, vm, line, slot, par)
                } else {
                    vm.pending_line = Some(line);
                    vm.next_free = slot;
                    slot
                }
            }
            MemOp::Atomic { line } => {
                let begin = bus.acquire_lock(now, cfg.atomic_lock_cycles);
                let outcome = cache.access(vm.domain, line);
                vm.next_free = begin + cfg.atomic_lock_cycles;
                vm.last_outcome = Some(if outcome.is_miss() {
                    AccessOutcome::Miss
                } else {
                    AccessOutcome::Hit
                });
                vm.next_free
            }
        }
    }

    /// Cost scaled by memory-level parallelism. `parallelism == 1` (the
    /// overwhelmingly common case) skips the 64-bit division.
    #[inline]
    fn scaled(cost: u64, parallelism: u8) -> u64 {
        if parallelism <= 1 {
            cost
        } else {
            cost.div_ceil(parallelism as u64)
        }
    }

    /// Executes one ordinary memory access for `vm` starting at `now`.
    #[inline]
    fn finish_access(
        cfg: &ServerConfig,
        cache: &mut Llc,
        bus: &Bus,
        dram: &mut Dram,
        vm: &mut Vm,
        line: u64,
        now: u64,
        par: u8,
    ) -> u64 {
        let begin = bus.earliest_access(now);
        let outcome = cache.access(vm.domain, line);
        if outcome.is_miss() {
            // The miss queues on the shared DRAM channel.
            let start = dram.serve(begin);
            let cost = (start - begin) + cfg.miss_cycles;
            vm.next_free = begin + Self::scaled(cost, par).max(1);
            vm.last_outcome = Some(AccessOutcome::Miss);
        } else {
            vm.next_free = begin + Self::scaled(cfg.hit_cycles, par).max(1);
            vm.last_outcome = Some(AccessOutcome::Hit);
        }
        vm.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IdleProgram;

    /// Streams sequentially over `lines` distinct cache lines.
    struct Streamer {
        lines: u64,
        next: u64,
        work: u64,
    }

    impl Streamer {
        fn new(lines: u64) -> Self {
            Streamer { lines, next: 0, work: 0 }
        }
    }

    impl VmProgram for Streamer {
        fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
            self.next = (self.next + 1) % self.lines;
            self.work += 1;
            MemOp::read(self.next)
        }
        fn name(&self) -> &str {
            "streamer"
        }
        fn work_completed(&self) -> u64 {
            self.work
        }
    }

    /// Cleanses set after set: accesses `ways` distinct lines of one set
    /// back to back before moving on, the pattern the LLC cleansing
    /// attack uses to defeat LRU (a plain sequential stream would only
    /// evict its own stale lines).
    struct SetCleanser {
        sets: u64,
        ways: u64,
        set: u64,
        way: u64,
    }

    impl SetCleanser {
        fn new(geometry: CacheGeometry) -> Self {
            SetCleanser {
                sets: geometry.sets as u64,
                ways: geometry.ways as u64,
                set: 0,
                way: 0,
            }
        }
    }

    impl VmProgram for SetCleanser {
        fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
            let line = self.set + self.way * self.sets;
            self.way += 1;
            if self.way == self.ways {
                self.way = 0;
                self.set = (self.set + 1) % self.sets;
            }
            MemOp::read(line)
        }
        fn name(&self) -> &str {
            "set-cleanser"
        }
    }

    /// Issues bus-locking atomics back to back.
    struct Locker;

    impl VmProgram for Locker {
        fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
            MemOp::Atomic { line: 0 }
        }
        fn name(&self) -> &str {
            "locker"
        }
    }

    fn small_cfg() -> ServerConfig {
        ServerConfig {
            geometry: CacheGeometry { sets: 256, ways: 4 },
            ..ServerConfig::default()
        }
    }

    #[test]
    fn single_vm_throughput_matches_cost_model() {
        let mut server = Server::new(small_cfg());
        // 64 lines fit in cache: after warm-up everything hits.
        let vm = server.add_vm("victim", Box::new(Streamer::new(64)));
        server.tick(); // warm-up
        let report = server.tick();
        let s = report.sample(vm).unwrap();
        let expected = server.config().tick_cycles / server.config().hit_cycles;
        let ratio = s.accesses as f64 / expected as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "accesses {} vs expected {expected}",
            s.accesses
        );
        assert_eq!(s.misses, 0, "warm working set should not miss");
    }

    #[test]
    fn miss_heavy_stream_is_slower() {
        let mut server = Server::new(small_cfg());
        // 100k lines >> cache capacity (1024 lines): every access misses.
        let vm = server.add_vm("victim", Box::new(Streamer::new(100_000)));
        server.tick();
        let report = server.tick();
        let s = report.sample(vm).unwrap();
        let expected = server.config().tick_cycles / server.config().miss_cycles;
        let ratio = s.accesses as f64 / expected as f64;
        assert!((0.9..=1.1).contains(&ratio), "accesses {}", s.accesses);
        assert_eq!(s.misses, s.accesses);
    }

    #[test]
    fn bus_locking_attack_starves_victim() {
        let mut server = Server::new(small_cfg());
        let victim = server.add_vm("victim", Box::new(Streamer::new(64)));
        server.tick();
        let before = server.tick().sample(victim).unwrap().accesses;

        let mut attacked = Server::new(small_cfg());
        let victim2 = attacked.add_vm("victim", Box::new(Streamer::new(64)));
        attacked.add_vm("attacker", Box::new(Locker));
        attacked.tick();
        let after = attacked.tick().sample(victim2).unwrap().accesses;

        // Observation 1 (bus lock): significant AccessNum decrease.
        assert!(
            (after as f64) < 0.5 * before as f64,
            "no starvation: {before} -> {after}"
        );
        assert!(attacked.bus_stats().0 > 0);
    }

    #[test]
    fn cache_cleansing_inflates_victim_misses() {
        // Victim fits in cache alone; a co-located streamer over the whole
        // cache evicts it continuously.
        let mut alone = Server::new(small_cfg());
        let v1 = alone.add_vm("victim", Box::new(Streamer::new(512)));
        alone.run_collect(5);
        let clean_report = alone.tick();
        let clean = clean_report.sample(v1).unwrap();

        let mut attacked = Server::new(small_cfg());
        let v2 = attacked.add_vm("victim", Box::new(Streamer::new(512)));
        attacked.add_vm(
            "cleanser",
            Box::new(SetCleanser::new(small_cfg().geometry)),
        );
        attacked.run_collect(5);
        let dirty_report = attacked.tick();
        let dirty = dirty_report.sample(v2).unwrap();

        // Observation 1 (cleansing): significant MissNum increase.
        assert!(
            dirty.misses > clean.misses + 100,
            "misses {} -> {}",
            clean.misses,
            dirty.misses
        );
    }

    #[test]
    fn paused_vm_makes_no_progress() {
        let mut server = Server::new(small_cfg());
        let vm = server.add_vm("victim", Box::new(Streamer::new(64)));
        server.tick();
        let w0 = server.vm_work(vm);
        server.pause(vm);
        let report = server.tick();
        assert_eq!(server.vm_work(vm), w0);
        assert_eq!(report.sample(vm).unwrap().accesses, 0);
        assert_eq!(server.hypervisor().vm(vm).paused_ticks(), 1);
        server.resume(vm);
        server.tick();
        assert!(server.vm_work(vm) > w0);
    }

    #[test]
    fn pause_all_except_protects_target() {
        let mut server = Server::new(small_cfg());
        let a = server.add_vm("a", Box::new(Streamer::new(64)));
        let b = server.add_vm("b", Box::new(Streamer::new(64)));
        server.pause_all_except(a);
        let report = server.tick();
        assert!(report.sample(a).unwrap().accesses > 0);
        assert_eq!(report.sample(b).unwrap().accesses, 0);
        server.resume_all();
        let report = server.tick();
        assert!(report.sample(b).unwrap().accesses > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut server = Server::new(small_cfg().with_seed(seed));
            let vm = server.add_vm("v", Box::new(Streamer::new(2000)));
            server.add_vm("idle", Box::new(IdleProgram));
            server
                .run_collect(20)
                .iter()
                .map(|r| r.sample(vm).unwrap().accesses)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        // Note: a pure streamer is RNG-independent, so also sanity-check
        // the reports are non-trivial.
        assert!(run(1).iter().sum::<u64>() > 0);
    }

    #[test]
    fn monitor_tax_slows_vms() {
        let throughput = |tax: u64| {
            let mut cfg = small_cfg();
            cfg.monitor_tax_cycles = tax;
            let mut server = Server::new(cfg);
            let vm = server.add_vm("v", Box::new(Streamer::new(64)));
            server.run_collect(4);
            server.tick().sample(vm).unwrap().accesses
        };
        let free = throughput(0);
        let taxed = throughput(4000); // 2 % of the tick
        let ratio = taxed as f64 / free as f64;
        assert!((0.96..=0.995).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn monitor_load_pollutes_cache() {
        let misses = |load: u64| {
            let mut server = Server::new(small_cfg());
            server.set_monitor_load(load);
            let vm = server.add_vm("v", Box::new(Streamer::new(900)));
            server.run_collect(5);
            server.tick().sample(vm).unwrap().misses
        };
        // The victim's 900-line set nearly fills the 1024-line cache;
        // monitor pollution causes evictions.
        assert!(misses(500) > misses(0));
    }

    #[test]
    fn time_advances_by_t_pcm() {
        let mut server = Server::new(small_cfg());
        assert_eq!(server.time_secs(), 0.0);
        let r = server.tick();
        assert!((r.time_secs - 0.01).abs() < 1e-12);
        assert_eq!(server.current_tick(), 1);
    }

    #[test]
    fn tick_report_sample_lookup() {
        let mut server = Server::new(small_cfg());
        let vm = server.add_vm("v", Box::new(IdleProgram));
        let r = server.tick();
        assert!(r.sample(vm).is_some());
        assert!(r.sample(VmId(9)).is_none());
    }

    #[test]
    fn fused_work_op_counts_compute_then_access() {
        // One fused Work op must behave exactly like Compute followed by
        // Access: the access executes at the VM's next slot and is
        // counted in whichever tick that slot lands in.
        struct Fused;
        impl VmProgram for Fused {
            fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
                MemOp::Work { compute: 70, line: 3, write: false }
            }
            fn name(&self) -> &str {
                "fused"
            }
        }
        struct Split {
            pending: bool,
        }
        impl VmProgram for Split {
            fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
                self.pending = !self.pending;
                if self.pending {
                    MemOp::Compute { cycles: 70 }
                } else {
                    MemOp::read(3)
                }
            }
            fn name(&self) -> &str {
                "split"
            }
        }
        let run = |program: Box<dyn VmProgram>| {
            let mut server = Server::new(small_cfg());
            let vm = server.add_vm("v", program);
            (0..5)
                .map(|_| {
                    let r = server.tick();
                    let s = r.sample(vm).unwrap();
                    (s.accesses, s.misses)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(Box::new(Fused)), run(Box::new(Split { pending: false })));
    }
}

/// Seeded equivalence suite: the event-driven [`Server::tick`] and the
/// cycle-budgeted [`Server::tick_reference`] must produce byte-identical
/// PCM sample streams and counters from identical initial state, across
/// randomized configurations, program mixes and throttling schedules.
#[cfg(test)]
mod equivalence {
    use super::*;

    /// A program that draws a random mix of every op kind from its VM
    /// RNG stream — exercises compute stalls, fused work ops, plain and
    /// write accesses, and bus-locking atomics.
    struct RandomOps;

    impl VmProgram for RandomOps {
        fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
            match ctx.rng.next_below(6) {
                0 => MemOp::read(ctx.rng.next_below(4096)),
                1 => MemOp::write(ctx.rng.next_below(1 << 16)),
                2 => MemOp::Compute {
                    cycles: ctx.rng.range_inclusive(0, 20_000) as u32,
                },
                3 => MemOp::Atomic { line: ctx.rng.next_below(256) },
                _ => MemOp::Work {
                    compute: ctx.rng.range_inclusive(1, 5_000) as u32,
                    line: ctx.rng.next_below(8192),
                    write: ctx.rng.chance(0.5),
                },
            }
        }
        fn name(&self) -> &str {
            "random-ops"
        }
    }

    /// A reactive program: streams while hitting, jumps on a miss — makes
    /// the `last_outcome` feedback path part of the pinned behaviour.
    struct Reactive {
        pos: u64,
    }

    impl VmProgram for Reactive {
        fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
            if ctx.last_outcome == Some(AccessOutcome::Miss) {
                self.pos = ctx.rng.next_below(1 << 14);
            } else {
                self.pos += 1;
            }
            MemOp::read(self.pos)
        }
        fn name(&self) -> &str {
            "reactive"
        }
    }

    fn random_config(rng: &mut Rng) -> ServerConfig {
        ServerConfig {
            geometry: CacheGeometry {
                sets: 1 << rng.range_inclusive(4, 9),
                ways: rng.range_inclusive(1, 8) as usize,
            },
            tick_cycles: rng.range_inclusive(10_000, 60_000),
            hit_cycles: rng.range_inclusive(1, 60),
            miss_cycles: rng.range_inclusive(100, 500),
            atomic_lock_cycles: rng.range_inclusive(200, 1_500),
            t_pcm_secs: 0.01,
            seed: rng.next_u64(),
            monitor_tax_cycles: rng.range_inclusive(0, 2_000),
            dram_service_cycles: rng.range_inclusive(0, 80),
        }
    }

    fn populate(server: &mut Server, kinds: &[u64], parallelisms: &[u8]) {
        for (i, (&kind, &par)) in kinds.iter().zip(parallelisms).enumerate() {
            let program: Box<dyn VmProgram> = match kind {
                0 => Box::new(RandomOps),
                1 => Box::new(Reactive { pos: 0 }),
                _ => Box::new(crate::program::IdleProgram),
            };
            server.add_vm_parallel(format!("vm-{i}"), program, par);
        }
    }

    fn assert_reports_equal(a: &TickReport, b: &TickReport, round: usize, t: u64) {
        assert_eq!(a.tick, b.tick, "round {round} tick {t}");
        assert_eq!(
            a.time_secs.to_bits(),
            b.time_secs.to_bits(),
            "round {round} tick {t}: time differs"
        );
        assert_eq!(a.samples, b.samples, "round {round} tick {t}: samples differ");
    }

    #[test]
    fn event_engine_matches_reference_on_randomized_configs() {
        let mut rng = Rng::new(0xE0E27_15EED);
        for round in 0..30 {
            let cfg = random_config(&mut rng);
            let n_vms = rng.range_inclusive(1, 5) as usize;
            let kinds: Vec<u64> = (0..n_vms).map(|_| rng.next_below(3)).collect();
            let parallelisms: Vec<u8> =
                (0..n_vms).map(|_| rng.range_inclusive(1, 4) as u8).collect();
            let monitor_load = if rng.chance(0.3) { rng.range_inclusive(1, 200) } else { 0 };
            let ticks = rng.range_inclusive(20, 40);

            // A throttling script, applied identically to both engines:
            // (tick, Some(vm to protect) | None = resume all).
            let mut script: Vec<(u64, Option<u16>)> = Vec::new();
            if rng.chance(0.6) {
                let pause_at = rng.range_inclusive(2, ticks / 2);
                let resume_at = rng.range_inclusive(pause_at + 1, ticks - 1);
                let protected = rng.next_below(n_vms as u64) as u16;
                script.push((pause_at, Some(protected)));
                script.push((resume_at, None));
            }

            let build = |cfg: ServerConfig| {
                let mut server = Server::new(cfg);
                populate(&mut server, &kinds, &parallelisms);
                server.set_monitor_load(monitor_load);
                server
            };
            let mut event = build(cfg);
            let mut reference = build(cfg);

            for t in 0..ticks {
                for &(at, action) in &script {
                    if at == t {
                        match action {
                            Some(vm) => {
                                event.pause_all_except(VmId(vm));
                                reference.pause_all_except(VmId(vm));
                            }
                            None => {
                                event.resume_all();
                                reference.resume_all();
                            }
                        }
                    }
                }
                let a = event.tick();
                let b = reference.tick_reference();
                assert_reports_equal(&a, &b, round, t);
            }

            // Verdict-relevant cumulative counters must agree too.
            assert_eq!(event.bus_stats(), reference.bus_stats(), "round {round}: bus");
            assert_eq!(
                event.dram_mean_wait().to_bits(),
                reference.dram_mean_wait().to_bits(),
                "round {round}: dram"
            );
            for (id, _) in reference.hypervisor().iter() {
                assert_eq!(
                    event.vm_work(id),
                    reference.vm_work(id),
                    "round {round}: work of {id}"
                );
                assert_eq!(
                    event.hypervisor().vm(id).paused_ticks(),
                    reference.hypervisor().vm(id).paused_ticks(),
                    "round {round}: paused ticks of {id}"
                );
            }
        }
    }

    #[test]
    fn engines_agree_after_interleaved_stepping() {
        // Alternating which engine variant drives the same server must be
        // legal too: both step functions leave identical state behind.
        let cfg = ServerConfig {
            geometry: CacheGeometry { sets: 64, ways: 4 },
            tick_cycles: 30_000,
            ..ServerConfig::default()
        };
        let build = || {
            let mut s = Server::new(cfg);
            populate(&mut s, &[0, 1, 0], &[1, 2, 1]);
            s
        };
        let mut a = build();
        let mut b = build();
        for t in 0..20u64 {
            let ra = if t % 2 == 0 { a.tick() } else { a.tick_reference() };
            let rb = b.tick_reference();
            assert_reports_equal(&ra, &rb, 0, t);
        }
    }
}
