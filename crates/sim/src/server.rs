//! The discrete-time server engine.
//!
//! One engine tick is one `T_PCM` sampling interval (10 ms of simulated
//! time by default). Within a tick every *running* VM executes on its own
//! core until its cycle budget for the tick is exhausted. VMs are
//! interleaved in **global-cycle order** (the VM with the smallest
//! next-free cycle executes its next operation first), which makes
//! contention on the shared bus causally consistent: any bus lock visible
//! to an operation at cycle `t` was placed by an operation that logically
//! preceded `t`.
//!
//! ## Cost model
//!
//! | operation | cost (cycles) |
//! |---|---|
//! | LLC hit | `hit_cycles` (default 30) |
//! | LLC miss | `miss_cycles` (default 300) — includes the DRAM round-trip |
//! | atomic (bus-locking) op | `atomic_lock_cycles` (default 800), bus held exclusively |
//! | compute | as requested by the program |
//!
//! An ordinary access additionally stalls until the bus is free. An
//! operation that crosses the tick boundary simply completes during the
//! next tick (the VM's `next_free` cycle carries over).
//!
//! ## Monitoring overhead
//!
//! A detection system is not free: reading uncore counters and running
//! the analysis steals cycles from the cores ("performance overhead",
//! Fig. 12). [`ServerConfig::monitor_tax_cycles`] models this as a
//! per-tick, per-VM cycle tax, and [`Server::set_monitor_load`] lets the
//! monitoring process issue its own cache traffic (domain 0), which
//! pollutes the LLC exactly like any tenant. The KStest baseline's much
//! larger *throttling* overhead emerges naturally from
//! [`Server::pause_all_except`].

use crate::bus::{Bus, Dram};
use crate::cache::{CacheGeometry, DomainId, Llc};
use crate::hypervisor::{Hypervisor, VmId, VmState};
use crate::pcm::PcmSample;
use crate::program::{AccessOutcome, MemOp, ProgramCtx, VmProgram};
use crate::rng::Rng;

/// Configuration of a simulated server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// LLC geometry.
    pub geometry: CacheGeometry,
    /// CPU cycles available to each core per tick.
    pub tick_cycles: u64,
    /// Cost of an LLC hit.
    pub hit_cycles: u64,
    /// Cost of an LLC miss (includes the DRAM access).
    pub miss_cycles: u64,
    /// Bus-lock duration of one atomic operation.
    pub atomic_lock_cycles: u64,
    /// Simulated seconds per tick (the paper's `T_PCM`, default 0.01 s).
    pub t_pcm_secs: f64,
    /// Root seed; every VM derives its private RNG stream from it.
    pub seed: u64,
    /// Per-tick, per-VM cycle tax imposed by an active monitoring system
    /// (0 = no monitoring).
    pub monitor_tax_cycles: u64,
    /// DRAM channel service time per LLC miss (0 = infinite bandwidth).
    /// Misses queue behind each other on the shared channel, so a tenant
    /// that saturates DRAM slows every other tenant's misses.
    pub dram_service_cycles: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            geometry: CacheGeometry::default(),
            tick_cycles: 200_000,
            hit_cycles: 30,
            miss_cycles: 300,
            atomic_lock_cycles: 800,
            t_pcm_secs: 0.01,
            seed: 0x5EED,
            monitor_tax_cycles: 0,
            dram_service_cycles: 40,
        }
    }
}

impl ServerConfig {
    /// Returns a copy with a different seed — the common way experiment
    /// runners derive per-run configurations.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The PCM output of one tick: one sample per VM, in `VmId` order.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Index of the tick that just completed.
    pub tick: u64,
    /// Simulated time at the *end* of this tick, in seconds.
    pub time_secs: f64,
    /// One sample per VM.
    pub samples: Vec<PcmSample>,
}

impl TickReport {
    /// The sample of one VM, if it exists.
    pub fn sample(&self, vm: VmId) -> Option<&PcmSample> {
        self.samples.get(vm.0 as usize)
    }
}

/// A simulated multi-tenant cloud server.
pub struct Server {
    cfg: ServerConfig,
    cache: Llc,
    bus: Bus,
    dram: Dram,
    hv: Hypervisor,
    root_rng: Rng,
    tick: u64,
    monitor_domain: DomainId,
    monitor_rng: Rng,
    /// Cache lines the monitoring process touches per tick (pollution).
    monitor_load_lines: u64,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tick", &self.tick)
            .field("vms", &self.hv.len())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server with no VMs.
    pub fn new(cfg: ServerConfig) -> Self {
        let mut cache = Llc::new(cfg.geometry);
        let monitor_domain = cache.register_domain();
        debug_assert_eq!(monitor_domain, DomainId(0));
        let mut root_rng = Rng::new(cfg.seed);
        let monitor_rng = root_rng.fork(u64::MAX);
        Server {
            cache,
            bus: Bus::new(),
            dram: Dram::new(cfg.dram_service_cycles),
            hv: Hypervisor::new(),
            cfg,
            root_rng,
            tick: 0,
            monitor_domain,
            monitor_rng,
            monitor_load_lines: 0,
        }
    }

    /// Configuration the server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Adds a VM running `program`; returns its id.
    pub fn add_vm(&mut self, name: impl Into<String>, program: Box<dyn VmProgram>) -> VmId {
        self.add_vm_parallel(name, program, 1)
    }

    /// Adds a VM with memory-level parallelism: its ordinary accesses and
    /// compute advance its core clock at `1/parallelism` of their cost,
    /// modelling a guest with several vCPUs issuing memory requests in
    /// parallel (the paper's attack VM runs a multi-threaded cleanser).
    /// Atomic bus-locking operations are serial and never accelerated.
    pub fn add_vm_parallel(
        &mut self,
        name: impl Into<String>,
        program: Box<dyn VmProgram>,
        parallelism: u8,
    ) -> VmId {
        let domain = self.cache.register_domain();
        let stream = domain.0 as u64;
        let rng = self.root_rng.fork(stream);
        self.hv.add_vm(name, program, domain, rng, parallelism)
    }

    /// Read-only access to the hypervisor (VM table).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// Pauses every VM except `protected` (execution throttling).
    pub fn pause_all_except(&mut self, protected: VmId) {
        self.hv.pause_all_except(protected);
    }

    /// Pauses one VM.
    pub fn pause(&mut self, vm: VmId) {
        self.hv.pause(vm);
    }

    /// Resumes one VM.
    pub fn resume(&mut self, vm: VmId) {
        self.hv.resume(vm);
    }

    /// Resumes all VMs.
    pub fn resume_all(&mut self) {
        self.hv.resume_all();
    }

    /// Sets the number of cache lines the monitoring process touches per
    /// tick (LLC pollution caused by the detection system itself).
    pub fn set_monitor_load(&mut self, lines_per_tick: u64) {
        self.monitor_load_lines = lines_per_tick;
    }

    /// Sets the per-tick, per-VM monitoring cycle tax.
    pub fn set_monitor_tax(&mut self, cycles: u64) {
        self.cfg.monitor_tax_cycles = cycles;
    }

    /// Index of the next tick to execute.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Simulated time at the start of the next tick, in seconds.
    pub fn time_secs(&self) -> f64 {
        self.tick as f64 * self.cfg.t_pcm_secs
    }

    /// Work units completed by a VM's guest program.
    pub fn vm_work(&self, vm: VmId) -> u64 {
        self.hv.vm(vm).work_completed()
    }

    /// Cumulative bus-lock statistics `(locks, locked_cycles)`.
    pub fn bus_stats(&self) -> (u64, u64) {
        (self.bus.total_locks(), self.bus.total_locked_cycles())
    }

    /// Mean DRAM queueing wait per miss so far, in cycles — a direct
    /// measure of memory-bandwidth contention.
    pub fn dram_mean_wait(&self) -> f64 {
        self.dram.mean_wait_cycles()
    }

    /// Executes one tick (one `T_PCM` interval) and returns the PCM
    /// samples of every VM.
    pub fn tick(&mut self) -> TickReport {
        let start = self.tick * self.cfg.tick_cycles;
        let end = start + self.cfg.tick_cycles;
        let tax = self.cfg.monitor_tax_cycles.min(self.cfg.tick_cycles);

        // Monitoring pollution: the analysis process touches its own
        // working set through the shared LLC.
        for _ in 0..self.monitor_load_lines {
            let line = self.monitor_rng.next_below(1 << 20);
            self.cache.access(self.monitor_domain, line);
        }
        self.cache.drain_counters(self.monitor_domain);

        // Tick prologue: align each VM's next-free cycle with the tick,
        // apply the monitoring tax, account paused time.
        for vm in self.hv.vms_mut() {
            match vm.state {
                VmState::Running => {
                    vm.next_free = vm.next_free.max(start + tax);
                }
                VmState::Paused => {
                    vm.paused_ticks += 1;
                    // A paused VM makes no progress; it resumes from the
                    // current simulated time, not from where it stopped.
                    vm.next_free = vm.next_free.max(end);
                }
            }
        }

        // Main loop: always advance the VM with the smallest next-free
        // cycle that still fits in this tick.
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (i, vm) in self.hv.vms_mut().iter().enumerate() {
                if vm.state == VmState::Running && vm.next_free < end {
                    match best {
                        Some((_, t)) if t <= vm.next_free => {}
                        _ => best = Some((i, vm.next_free)),
                    }
                }
            }
            let Some((idx, _)) = best else { break };
            self.step_vm(idx);
        }

        self.tick += 1;
        let samples: Vec<PcmSample> = self
            .hv
            .iter()
            .map(|(id, vm)| (id, vm.domain))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(id, domain)| {
                let c = self.cache.drain_counters(domain);
                PcmSample { vm: id, domain, accesses: c.accesses, misses: c.misses }
            })
            .collect();
        TickReport {
            tick: self.tick - 1,
            time_secs: self.tick as f64 * self.cfg.t_pcm_secs,
            samples,
        }
    }

    /// Executes `n` ticks, collecting every report.
    pub fn run_collect(&mut self, n: u64) -> Vec<TickReport> {
        (0..n).map(|_| self.tick()).collect()
    }

    /// Executes one operation of the VM at table index `idx`.
    fn step_vm(&mut self, idx: usize) {
        let tick = self.tick;
        let Some(vm) = self.hv.vms_mut().get_mut(idx) else {
            return;
        };
        let mut ctx = ProgramCtx {
            rng: &mut vm.rng,
            last_outcome: vm.last_outcome,
            tick,
        };
        let op = vm.program.next_op(&mut ctx);
        let domain = vm.domain;
        let now = vm.next_free;
        let par = vm.parallelism.max(1) as u64;
        match op {
            MemOp::Compute { cycles } => {
                vm.next_free = now + (cycles.max(1) as u64).div_ceil(par);
            }
            MemOp::Access { line, .. } => {
                let begin = self.bus.earliest_access(now);
                let outcome = self.cache.access(domain, line);
                let cost = if outcome.is_miss() {
                    // The miss queues on the shared DRAM channel.
                    let start = self.dram.serve(begin);
                    (start - begin) + self.cfg.miss_cycles
                } else {
                    self.cfg.hit_cycles
                };
                vm.next_free = begin + cost.div_ceil(par).max(1);
                vm.last_outcome = Some(if outcome.is_miss() {
                    AccessOutcome::Miss
                } else {
                    AccessOutcome::Hit
                });
            }
            MemOp::Atomic { line } => {
                let begin = self.bus.acquire_lock(now, self.cfg.atomic_lock_cycles);
                let outcome = self.cache.access(domain, line);
                vm.next_free = begin + self.cfg.atomic_lock_cycles;
                vm.last_outcome = Some(if outcome.is_miss() {
                    AccessOutcome::Miss
                } else {
                    AccessOutcome::Hit
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IdleProgram;

    /// Streams sequentially over `lines` distinct cache lines.
    struct Streamer {
        lines: u64,
        next: u64,
        work: u64,
    }

    impl Streamer {
        fn new(lines: u64) -> Self {
            Streamer { lines, next: 0, work: 0 }
        }
    }

    impl VmProgram for Streamer {
        fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
            self.next = (self.next + 1) % self.lines;
            self.work += 1;
            MemOp::read(self.next)
        }
        fn name(&self) -> &str {
            "streamer"
        }
        fn work_completed(&self) -> u64 {
            self.work
        }
    }

    /// Cleanses set after set: accesses `ways` distinct lines of one set
    /// back to back before moving on, the pattern the LLC cleansing
    /// attack uses to defeat LRU (a plain sequential stream would only
    /// evict its own stale lines).
    struct SetCleanser {
        sets: u64,
        ways: u64,
        set: u64,
        way: u64,
    }

    impl SetCleanser {
        fn new(geometry: CacheGeometry) -> Self {
            SetCleanser {
                sets: geometry.sets as u64,
                ways: geometry.ways as u64,
                set: 0,
                way: 0,
            }
        }
    }

    impl VmProgram for SetCleanser {
        fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
            let line = self.set + self.way * self.sets;
            self.way += 1;
            if self.way == self.ways {
                self.way = 0;
                self.set = (self.set + 1) % self.sets;
            }
            MemOp::read(line)
        }
        fn name(&self) -> &str {
            "set-cleanser"
        }
    }

    /// Issues bus-locking atomics back to back.
    struct Locker;

    impl VmProgram for Locker {
        fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
            MemOp::Atomic { line: 0 }
        }
        fn name(&self) -> &str {
            "locker"
        }
    }

    fn small_cfg() -> ServerConfig {
        ServerConfig {
            geometry: CacheGeometry { sets: 256, ways: 4 },
            ..ServerConfig::default()
        }
    }

    #[test]
    fn single_vm_throughput_matches_cost_model() {
        let mut server = Server::new(small_cfg());
        // 64 lines fit in cache: after warm-up everything hits.
        let vm = server.add_vm("victim", Box::new(Streamer::new(64)));
        server.tick(); // warm-up
        let report = server.tick();
        let s = report.sample(vm).unwrap();
        let expected = server.config().tick_cycles / server.config().hit_cycles;
        let ratio = s.accesses as f64 / expected as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "accesses {} vs expected {expected}",
            s.accesses
        );
        assert_eq!(s.misses, 0, "warm working set should not miss");
    }

    #[test]
    fn miss_heavy_stream_is_slower() {
        let mut server = Server::new(small_cfg());
        // 100k lines >> cache capacity (1024 lines): every access misses.
        let vm = server.add_vm("victim", Box::new(Streamer::new(100_000)));
        server.tick();
        let report = server.tick();
        let s = report.sample(vm).unwrap();
        let expected = server.config().tick_cycles / server.config().miss_cycles;
        let ratio = s.accesses as f64 / expected as f64;
        assert!((0.9..=1.1).contains(&ratio), "accesses {}", s.accesses);
        assert_eq!(s.misses, s.accesses);
    }

    #[test]
    fn bus_locking_attack_starves_victim() {
        let mut server = Server::new(small_cfg());
        let victim = server.add_vm("victim", Box::new(Streamer::new(64)));
        server.tick();
        let before = server.tick().sample(victim).unwrap().accesses;

        let mut attacked = Server::new(small_cfg());
        let victim2 = attacked.add_vm("victim", Box::new(Streamer::new(64)));
        attacked.add_vm("attacker", Box::new(Locker));
        attacked.tick();
        let after = attacked.tick().sample(victim2).unwrap().accesses;

        // Observation 1 (bus lock): significant AccessNum decrease.
        assert!(
            (after as f64) < 0.5 * before as f64,
            "no starvation: {before} -> {after}"
        );
        assert!(attacked.bus_stats().0 > 0);
    }

    #[test]
    fn cache_cleansing_inflates_victim_misses() {
        // Victim fits in cache alone; a co-located streamer over the whole
        // cache evicts it continuously.
        let mut alone = Server::new(small_cfg());
        let v1 = alone.add_vm("victim", Box::new(Streamer::new(512)));
        alone.run_collect(5);
        let clean_report = alone.tick();
        let clean = clean_report.sample(v1).unwrap();

        let mut attacked = Server::new(small_cfg());
        let v2 = attacked.add_vm("victim", Box::new(Streamer::new(512)));
        attacked.add_vm(
            "cleanser",
            Box::new(SetCleanser::new(small_cfg().geometry)),
        );
        attacked.run_collect(5);
        let dirty_report = attacked.tick();
        let dirty = dirty_report.sample(v2).unwrap();

        // Observation 1 (cleansing): significant MissNum increase.
        assert!(
            dirty.misses > clean.misses + 100,
            "misses {} -> {}",
            clean.misses,
            dirty.misses
        );
    }

    #[test]
    fn paused_vm_makes_no_progress() {
        let mut server = Server::new(small_cfg());
        let vm = server.add_vm("victim", Box::new(Streamer::new(64)));
        server.tick();
        let w0 = server.vm_work(vm);
        server.pause(vm);
        let report = server.tick();
        assert_eq!(server.vm_work(vm), w0);
        assert_eq!(report.sample(vm).unwrap().accesses, 0);
        assert_eq!(server.hypervisor().vm(vm).paused_ticks(), 1);
        server.resume(vm);
        server.tick();
        assert!(server.vm_work(vm) > w0);
    }

    #[test]
    fn pause_all_except_protects_target() {
        let mut server = Server::new(small_cfg());
        let a = server.add_vm("a", Box::new(Streamer::new(64)));
        let b = server.add_vm("b", Box::new(Streamer::new(64)));
        server.pause_all_except(a);
        let report = server.tick();
        assert!(report.sample(a).unwrap().accesses > 0);
        assert_eq!(report.sample(b).unwrap().accesses, 0);
        server.resume_all();
        let report = server.tick();
        assert!(report.sample(b).unwrap().accesses > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut server = Server::new(small_cfg().with_seed(seed));
            let vm = server.add_vm("v", Box::new(Streamer::new(2000)));
            server.add_vm("idle", Box::new(IdleProgram));
            server
                .run_collect(20)
                .iter()
                .map(|r| r.sample(vm).unwrap().accesses)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        // Note: a pure streamer is RNG-independent, so also sanity-check
        // the reports are non-trivial.
        assert!(run(1).iter().sum::<u64>() > 0);
    }

    #[test]
    fn monitor_tax_slows_vms() {
        let throughput = |tax: u64| {
            let mut cfg = small_cfg();
            cfg.monitor_tax_cycles = tax;
            let mut server = Server::new(cfg);
            let vm = server.add_vm("v", Box::new(Streamer::new(64)));
            server.run_collect(4);
            server.tick().sample(vm).unwrap().accesses
        };
        let free = throughput(0);
        let taxed = throughput(4000); // 2 % of the tick
        let ratio = taxed as f64 / free as f64;
        assert!((0.96..=0.995).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn monitor_load_pollutes_cache() {
        let misses = |load: u64| {
            let mut server = Server::new(small_cfg());
            server.set_monitor_load(load);
            let vm = server.add_vm("v", Box::new(Streamer::new(900)));
            server.run_collect(5);
            server.tick().sample(vm).unwrap().misses
        };
        // The victim's 900-line set nearly fills the 1024-line cache;
        // monitor pollution causes evictions.
        assert!(misses(500) > misses(0));
    }

    #[test]
    fn time_advances_by_t_pcm() {
        let mut server = Server::new(small_cfg());
        assert_eq!(server.time_secs(), 0.0);
        let r = server.tick();
        assert!((r.time_secs - 0.01).abs() < 1e-12);
        assert_eq!(server.current_tick(), 1);
    }

    #[test]
    fn tick_report_sample_lookup() {
        let mut server = Server::new(small_cfg());
        let vm = server.add_vm("v", Box::new(IdleProgram));
        let r = server.tick();
        assert!(r.sample(vm).is_some());
        assert!(r.sample(VmId(9)).is_none());
    }
}
