//! VM lifecycle and scheduling, including execution throttling.
//!
//! The hypervisor owns the VM table. Every running VM executes on its own
//! core (the paper's server has 14 physical cores for 9 VMs, so cores are
//! never oversubscribed); what VMs share is the LLC and the memory bus,
//! modelled in [`crate::cache`] and [`crate::bus`].
//!
//! The one scheduling primitive the paper's baseline needs is **execution
//! throttling**: "It first stops the executions of all other VMs except
//! the PROTECTED VM using execution throttling, and collects ... reference
//! samples" (§3.2). [`Hypervisor::pause_all_except`] /
//! [`Hypervisor::resume_all`] provide exactly that, and the engine
//! guarantees a paused VM makes no progress (which is precisely why the
//! KStest scheme costs co-located applications 3–8 % of their execution
//! time — reproduced in Fig. 12).

use crate::cache::DomainId;
use crate::program::{AccessOutcome, VmProgram};
use crate::rng::Rng;

/// Identifier of a VM on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u16);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Scheduling state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Executing normally on its core.
    Running,
    /// Throttled by the hypervisor; makes no progress.
    Paused,
}

/// A virtual machine: a guest program plus its execution state.
pub struct Vm {
    pub(crate) name: String,
    pub(crate) program: Box<dyn VmProgram>,
    pub(crate) state: VmState,
    pub(crate) rng: Rng,
    pub(crate) domain: DomainId,
    pub(crate) last_outcome: Option<AccessOutcome>,
    /// Absolute cycle at which this VM may issue its next operation.
    pub(crate) next_free: u64,
    /// Line address of the access half of a fused
    /// [`crate::program::MemOp::Work`] op whose compute half has executed;
    /// the engine issues it at this VM's next scheduling slot.
    pub(crate) pending_line: Option<u64>,
    /// Total ticks this VM has spent paused.
    pub(crate) paused_ticks: u64,
    /// Memory-level parallelism: ordinary accesses and compute from this
    /// VM advance its core clock at `1/parallelism` of their cost,
    /// modelling a guest with `parallelism` vCPUs/outstanding requests
    /// (the multi-threaded attack VM of Zhang et al.). Atomic bus locks
    /// are inherently serial and are never accelerated.
    pub(crate) parallelism: u8,
    /// First tick at which `parallelism` takes effect; before it the VM
    /// runs serially. Models a guest whose worker threads spin up on a
    /// launch command (an attack VM idling before its activation window
    /// has no reason to run multi-threaded) — and makes the pre-launch
    /// trace independent of the payload's thread count, which is what
    /// lets shared-prefix capture sweeps fork one warm-up across attack
    /// variants.
    pub(crate) parallelism_from: u64,
    /// Parallelism saved by [`Hypervisor::throttle`], restored on
    /// [`Hypervisor::unthrottle`]; `None` while unthrottled.
    pub(crate) unthrottled_parallelism: Option<u8>,
}

impl Vm {
    /// VM name given at creation.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cache/counter domain backing this VM.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Current scheduling state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Work units the guest program has completed.
    pub fn work_completed(&self) -> u64 {
        self.program.work_completed()
    }

    /// Total ticks spent throttled.
    pub fn paused_ticks(&self) -> u64 {
        self.paused_ticks
    }

    /// Whether this VM is currently execution-throttled (its memory-level
    /// parallelism clamped to 1 by [`Hypervisor::throttle`]).
    pub fn throttled(&self) -> bool {
        self.unthrottled_parallelism.is_some()
    }

    /// Memory-level parallelism effective at `tick`.
    #[inline]
    pub(crate) fn parallelism_at(&self, tick: u64) -> u8 {
        if tick >= self.parallelism_from {
            self.parallelism
        } else {
            1
        }
    }

    /// Snapshots this VM, program state included. Returns `None` when the
    /// guest program does not support [`VmProgram::clone_box`].
    fn try_clone(&self) -> Option<Vm> {
        Some(Vm {
            name: self.name.clone(),
            program: self.program.clone_box()?,
            state: self.state,
            rng: self.rng.clone(),
            domain: self.domain,
            last_outcome: self.last_outcome,
            next_free: self.next_free,
            pending_line: self.pending_line,
            paused_ticks: self.paused_ticks,
            parallelism: self.parallelism,
            parallelism_from: self.parallelism_from,
            unthrottled_parallelism: self.unthrottled_parallelism,
        })
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("name", &self.name)
            .field("program", &self.program.name())
            .field("state", &self.state)
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

/// The VM table and throttling controls.
#[derive(Debug, Default)]
pub struct Hypervisor {
    vms: Vec<Vm>,
}

impl Hypervisor {
    /// Creates an empty hypervisor.
    pub fn new() -> Self {
        Hypervisor { vms: Vec::new() }
    }

    /// Registers a VM. `domain` must come from the server's cache and
    /// `rng` from the server's root RNG so determinism is preserved.
    pub(crate) fn add_vm(
        &mut self,
        name: impl Into<String>,
        program: Box<dyn VmProgram>,
        domain: DomainId,
        rng: Rng,
        parallelism: u8,
        parallelism_from: u64,
    ) -> VmId {
        let id = VmId(self.vms.len() as u16);
        self.vms.push(Vm {
            name: name.into(),
            program,
            state: VmState::Running,
            rng,
            domain,
            last_outcome: None,
            next_free: 0,
            pending_line: None,
            paused_ticks: 0,
            parallelism: parallelism.max(1),
            parallelism_from,
            unthrottled_parallelism: None,
        });
        id
    }

    /// Number of VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }

    /// Immutable access to one VM.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a VM of this hypervisor.
    pub fn vm(&self, id: VmId) -> &Vm {
        // lint:allow(index) -- VmId values are only issued by add_vm and VMs
        // are never removed, so the documented panic is unreachable for them.
        &self.vms[id.0 as usize]
    }

    pub(crate) fn vms_mut(&mut self) -> &mut [Vm] {
        &mut self.vms
    }

    /// Mutable access to one VM's guest program — for fork flows that
    /// swap a wrapper program's payload in place.
    pub fn program_mut(&mut self, id: VmId) -> Option<&mut Box<dyn VmProgram>> {
        self.vms.get_mut(id.0 as usize).map(|vm| &mut vm.program)
    }

    /// Snapshots the whole VM table; `None` if any guest program does
    /// not support [`VmProgram::clone_box`].
    pub(crate) fn try_clone(&self) -> Option<Hypervisor> {
        let vms = self.vms.iter().map(Vm::try_clone).collect::<Option<Vec<_>>>()?;
        Some(Hypervisor { vms })
    }

    /// Iterator over `(VmId, &Vm)`.
    pub fn iter(&self) -> impl Iterator<Item = (VmId, &Vm)> {
        self.vms.iter().enumerate().map(|(i, vm)| (VmId(i as u16), vm))
    }

    /// Pauses one VM (execution throttling).
    pub fn pause(&mut self, id: VmId) {
        if let Some(vm) = self.vms.get_mut(id.0 as usize) {
            vm.state = VmState::Paused;
        }
    }

    /// Resumes one VM.
    pub fn resume(&mut self, id: VmId) {
        if let Some(vm) = self.vms.get_mut(id.0 as usize) {
            vm.state = VmState::Running;
        }
    }

    /// Execution-throttles one VM without descheduling it: its
    /// memory-level parallelism is clamped to 1 (the multi-threaded
    /// attack payload of Zhang et al. degrades to a single serial
    /// stream) while the VM keeps running — the mitigation rung below
    /// [`Hypervisor::pause`] on the respond ladder. Idempotent; returns
    /// `false` if the VM was already throttled or unknown.
    pub fn throttle(&mut self, id: VmId) -> bool {
        match self.vms.get_mut(id.0 as usize) {
            Some(vm) if vm.unthrottled_parallelism.is_none() => {
                vm.unthrottled_parallelism = Some(vm.parallelism);
                vm.parallelism = 1;
                true
            }
            _ => false,
        }
    }

    /// Lifts an execution throttle, restoring the parallelism the VM
    /// was registered with. Idempotent; returns `false` if the VM was
    /// not throttled or unknown.
    pub fn unthrottle(&mut self, id: VmId) -> bool {
        match self.vms.get_mut(id.0 as usize) {
            Some(vm) => match vm.unthrottled_parallelism.take() {
                Some(saved) => {
                    vm.parallelism = saved;
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Pauses every VM except `protected` — the KStest reference-sample
    /// collection primitive.
    pub fn pause_all_except(&mut self, protected: VmId) {
        for (i, vm) in self.vms.iter_mut().enumerate() {
            vm.state = if i == protected.0 as usize {
                VmState::Running
            } else {
                VmState::Paused
            };
        }
    }

    /// Resumes every VM.
    pub fn resume_all(&mut self) {
        for vm in &mut self.vms {
            vm.state = VmState::Running;
        }
    }

    /// Ids of all currently running VMs.
    pub fn running(&self) -> Vec<VmId> {
        self.iter()
            .filter(|(_, vm)| vm.state == VmState::Running)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::IdleProgram;

    fn hv_with(n: usize) -> Hypervisor {
        let mut hv = Hypervisor::new();
        let mut rng = Rng::new(1);
        for i in 0..n {
            let child = rng.fork(i as u64);
            hv.add_vm(format!("vm-{i}"), Box::new(IdleProgram), DomainId(i as u16 + 1), child, 1, 0);
        }
        hv
    }

    #[test]
    fn add_and_query() {
        let hv = hv_with(3);
        assert_eq!(hv.len(), 3);
        assert!(!hv.is_empty());
        assert_eq!(hv.vm(VmId(1)).name(), "vm-1");
        assert_eq!(hv.vm(VmId(2)).domain(), DomainId(3));
        assert_eq!(hv.vm(VmId(0)).state(), VmState::Running);
    }

    #[test]
    fn pause_resume_single() {
        let mut hv = hv_with(2);
        hv.pause(VmId(0));
        assert_eq!(hv.vm(VmId(0)).state(), VmState::Paused);
        assert_eq!(hv.vm(VmId(1)).state(), VmState::Running);
        hv.resume(VmId(0));
        assert_eq!(hv.vm(VmId(0)).state(), VmState::Running);
    }

    #[test]
    fn pause_all_except_protects_one() {
        let mut hv = hv_with(4);
        hv.pause_all_except(VmId(2));
        assert_eq!(hv.running(), vec![VmId(2)]);
        hv.resume_all();
        assert_eq!(hv.running().len(), 4);
    }

    #[test]
    fn pause_all_except_resumes_protected_if_paused() {
        let mut hv = hv_with(2);
        hv.pause(VmId(1));
        hv.pause_all_except(VmId(1));
        assert_eq!(hv.running(), vec![VmId(1)]);
    }

    #[test]
    fn throttle_clamps_parallelism_and_unthrottle_restores_it() {
        let mut hv = Hypervisor::new();
        let id = hv.add_vm("vm-t", Box::new(IdleProgram), DomainId(1), Rng::new(2), 4, 0);
        assert!(!hv.vm(id).throttled());
        assert!(hv.throttle(id));
        assert!(hv.vm(id).throttled());
        assert_eq!(hv.vm(id).parallelism_at(u64::MAX), 1);
        assert_eq!(hv.vm(id).state(), VmState::Running, "throttling is not a pause");
        assert!(!hv.throttle(id), "throttle is idempotent");
        assert!(hv.unthrottle(id));
        assert!(!hv.vm(id).throttled());
        assert_eq!(hv.vm(id).parallelism_at(u64::MAX), 4);
        assert!(!hv.unthrottle(id), "unthrottle is idempotent");
        assert!(!hv.throttle(VmId(9)), "unknown VM is a no-op");
    }

    #[test]
    fn debug_is_nonempty() {
        let hv = hv_with(1);
        assert!(!format!("{:?}", hv.vm(VmId(0))).is_empty());
    }
}
