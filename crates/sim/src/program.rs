//! The guest-program abstraction.
//!
//! A VM's workload is a [`VmProgram`]: a generator of memory operations
//! that the [`crate::server::Server`] engine executes against the shared
//! LLC and bus. Programs are *reactive* — they see the outcome (hit or
//! miss) of their previous access through [`ProgramCtx`], which is what
//! lets the LLC-cleansing attacker implement its probe phase exactly as
//! the paper describes: access lines, observe self-conflicts, deduce
//! which sets other VMs occupy.

use crate::rng::Rng;

/// One operation issued by a guest program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A memory access to cache line `line` (line-address granularity;
    /// the engine maps it into the shared LLC). `write` is informational —
    /// reads and writes cost the same in this model.
    Access {
        /// Line address within the VM's own address space.
        line: u64,
        /// Whether this is a store.
        write: bool,
    },
    /// An atomic operation that locks the memory bus for the configured
    /// lock duration (e.g. an `XCHG` or a locked read-modify-write that
    /// spans a cache-line boundary). This is the bus-locking attack's
    /// primitive; benign programs essentially never issue it.
    Atomic {
        /// Line address the atomic operates on.
        line: u64,
    },
    /// Pure computation consuming `cycles` CPU cycles with no memory
    /// traffic.
    Compute {
        /// Number of cycles consumed.
        cycles: u32,
    },
    /// A fused compute-then-access operation: `compute` cycles of pure
    /// computation followed by one memory access to `line`. Semantically
    /// identical to emitting `Compute { cycles: compute }` and then
    /// `Access { line, write }` on the next call, but costs the engine a
    /// single `next_op` round-trip — the phase-machine workloads emit
    /// almost every operation in this form. `compute` is clamped to at
    /// least 1 cycle (like `Compute`); use `Access` for a bare access.
    Work {
        /// Compute cycles preceding the access.
        compute: u32,
        /// Line address of the trailing access.
        line: u64,
        /// Whether the trailing access is a store.
        write: bool,
    },
}

impl MemOp {
    /// Convenience constructor for a read access.
    pub fn read(line: u64) -> Self {
        MemOp::Access { line, write: false }
    }

    /// Convenience constructor for a write access.
    pub fn write(line: u64) -> Self {
        MemOp::Access { line, write: true }
    }
}

/// Outcome of a program's most recent memory access, fed back on the next
/// [`VmProgram::next_op`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit in the LLC.
    Hit,
    /// The access missed (line fetched from DRAM).
    Miss,
}

/// Execution context handed to a program on every operation.
#[derive(Debug)]
pub struct ProgramCtx<'a> {
    /// The VM's private deterministic RNG stream.
    pub rng: &'a mut Rng,
    /// Outcome of this program's previous `Access`/`Atomic` op, if any.
    /// `Compute` ops do not update it.
    pub last_outcome: Option<AccessOutcome>,
    /// Current tick (one tick = one `T_PCM` sampling interval).
    pub tick: u64,
}

/// A guest workload: the unit the hypervisor schedules onto a VM.
///
/// Implementations live in `memdos-workloads` (the paper's ten
/// applications plus benign utilities) and `memdos-attacks` (the two
/// memory-DoS attack programs).
///
/// Programs must be deterministic given the RNG stream in
/// [`ProgramCtx`] — all experiment reproducibility rests on this.
pub trait VmProgram: Send {
    /// Produces the next operation. Called repeatedly within a tick until
    /// the VM's cycle budget is exhausted; the op that crosses the budget
    /// boundary completes in the next tick.
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp;

    /// Short human-readable workload name (e.g. `"kmeans"`).
    fn name(&self) -> &str;

    /// Abstract units of application work completed so far (items
    /// processed, rows scanned, ...). Used by the performance-overhead
    /// experiments (Fig. 12): execution time is the simulated time needed
    /// to complete a fixed amount of work.
    fn work_completed(&self) -> u64 {
        0
    }

    /// Snapshots this program — full mutable state included — into a
    /// boxed copy, enabling [`crate::server::Server::try_clone`]-based
    /// fork-at-a-tick flows (e.g. sharing a benign prefix across attack
    /// variants). Programs that keep unsnapshottable state may leave the
    /// default, which returns `None` and makes the owning server refuse
    /// to fork.
    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        None
    }

    /// Mutable [`std::any::Any`] access for orchestration code that must
    /// downcast a stored program (e.g. swapping a parked
    /// `Scheduled` attacker's payload after forking a shared prefix).
    /// Defaults to `None`; only wrapper programs that explicitly support
    /// in-place surgery override it.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

// The forwarding shims below are statically dispatched (the receiver is
// the sized `Box`), so with `#[inline]` each call collapses into the
// single vtable dispatch on the boxed object instead of two calls.
impl VmProgram for Box<dyn VmProgram> {
    #[inline]
    fn next_op(&mut self, ctx: &mut ProgramCtx<'_>) -> MemOp {
        (**self).next_op(ctx)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn work_completed(&self) -> u64 {
        (**self).work_completed()
    }
    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        (**self).clone_box()
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// A program that only computes (never touches memory). Useful as an
/// idle-VM placeholder and in engine tests.
#[derive(Debug, Clone, Default)]
pub struct IdleProgram;

impl VmProgram for IdleProgram {
    fn next_op(&mut self, _ctx: &mut ProgramCtx<'_>) -> MemOp {
        MemOp::Compute { cycles: 1000 }
    }
    fn name(&self) -> &str {
        "idle"
    }
    fn clone_box(&self) -> Option<Box<dyn VmProgram>> {
        Some(Box::new(IdleProgram))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memop_constructors() {
        assert_eq!(MemOp::read(5), MemOp::Access { line: 5, write: false });
        assert_eq!(MemOp::write(5), MemOp::Access { line: 5, write: true });
    }

    #[test]
    fn idle_program_never_accesses_memory() {
        let mut rng = Rng::new(1);
        let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: None, tick: 0 };
        let mut p = IdleProgram;
        for _ in 0..10 {
            assert!(matches!(p.next_op(&mut ctx), MemOp::Compute { .. }));
        }
        assert_eq!(p.work_completed(), 0);
        assert_eq!(p.name(), "idle");
    }

    #[test]
    fn boxed_program_delegates() {
        let mut boxed: Box<dyn VmProgram> = Box::new(IdleProgram);
        let mut rng = Rng::new(1);
        let mut ctx = ProgramCtx { rng: &mut rng, last_outcome: None, tick: 3 };
        assert_eq!(boxed.name(), "idle");
        assert!(matches!(boxed.next_op(&mut ctx), MemOp::Compute { .. }));
    }
}
