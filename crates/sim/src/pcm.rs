//! The Processor-Counter-Monitor stand-in.
//!
//! The paper's detectors consume per-VM cache statistics collected by
//! Intel PCM every `T_PCM` seconds (`T_PCM = 0.01 s` in Table 1): the
//! number of LLC accesses (`AccessNum`, used against the bus-locking
//! attack) and the number of LLC misses (`MissNum`, used against the
//! LLC-cleansing attack). In the simulator one engine tick *is* one
//! `T_PCM` interval: the sampler is the fixed
//! [`crate::event::ComponentId::SAMPLER`] event scheduled at every
//! tick's cycle bound — a per-tick clock divider in event-queue terms —
//! and popping it closes the tick and drains each domain's interval
//! counters.

use crate::cache::DomainId;
use crate::hypervisor::VmId;

/// One PCM sample: the cache-related statistics of one VM over one
/// `T_PCM` interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcmSample {
    /// The VM the sample belongs to.
    pub vm: VmId,
    /// The cache domain backing the VM.
    pub domain: DomainId,
    /// LLC accesses during the interval — the paper's `AccessNum`.
    pub accesses: u64,
    /// LLC misses during the interval — the paper's `MissNum`.
    pub misses: u64,
}

impl PcmSample {
    /// The statistic relevant to a given attack type, as a float ready
    /// for the preprocessing pipeline.
    pub fn stat(&self, which: Stat) -> f64 {
        match which {
            Stat::AccessNum => self.accesses as f64,
            Stat::MissNum => self.misses as f64,
        }
    }
}

/// Which cache-related statistic a detector monitors.
///
/// §3.1: "For bus locking attack, we measure AccessNum ... For LLC
/// cleansing attack, we measure MissNum".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stat {
    /// LLC accesses per `T_PCM` interval.
    AccessNum,
    /// LLC misses per `T_PCM` interval.
    MissNum,
}

impl std::fmt::Display for Stat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stat::AccessNum => write!(f, "AccessNum"),
            Stat::MissNum => write!(f, "MissNum"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_selector_picks_the_right_counter() {
        let s = PcmSample {
            vm: VmId(1),
            domain: DomainId(2),
            accesses: 100,
            misses: 7,
        };
        assert_eq!(s.stat(Stat::AccessNum), 100.0);
        assert_eq!(s.stat(Stat::MissNum), 7.0);
    }

    #[test]
    fn stat_display() {
        assert_eq!(Stat::AccessNum.to_string(), "AccessNum");
        assert_eq!(Stat::MissNum.to_string(), "MissNum");
    }
}
