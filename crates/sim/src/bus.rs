//! The socket-internal memory bus with atomic-lock semantics.
//!
//! §2.2 of the paper: "several atomic operations temporally lock all the
//! internal memory buses in the socket to guarantee atomicity. In the
//! atomic bus locking attack, the attack VM ... generates continuous
//! atomic locking signals ... which prevents the co-located VMs from
//! using the memory bus resources."
//!
//! The model is a single exclusive-lock timeline in global cycle time:
//!
//! * an **atomic** operation acquires the bus for a fixed number of
//!   cycles; acquisition waits for any earlier lock to release;
//! * an ordinary **memory access** cannot start while the bus is locked —
//!   it stalls until the lock releases.
//!
//! The simulation engine executes VM operations in global-cycle order —
//! the event heap in [`crate::event`] pops the smallest
//! `(next_cycle, ComponentId)` key first — so every lock visible at
//! time `t` was placed by an operation that logically preceded `t`.
//! The bus itself never appears in the event queue: a stalled access
//! folds the remaining lock time into its own cost
//! ([`Bus::earliest_access`]), so the waiting VM reschedules itself
//! past the release instead of the bus ticking idle cycles.

/// The shared memory bus.
#[derive(Debug, Clone, Default)]
pub struct Bus {
    /// Global cycle at which the current/most recent lock releases.
    locked_until: u64,
    /// Cumulative cycles the bus has spent locked (for diagnostics and
    /// the `tab_s34`-style analyses).
    total_locked_cycles: u64,
    /// Number of lock acquisitions.
    total_locks: u64,
}

impl Bus {
    /// Creates an unlocked bus.
    pub fn new() -> Self {
        Bus::default()
    }

    /// Earliest global cycle at or after `now` at which an ordinary
    /// memory access may start (i.e. after any outstanding lock).
    pub fn earliest_access(&self, now: u64) -> u64 {
        now.max(self.locked_until)
    }

    /// Whether the bus is locked at global cycle `now`.
    pub fn is_locked_at(&self, now: u64) -> bool {
        now < self.locked_until
    }

    /// Acquires an exclusive lock for `duration` cycles, starting no
    /// earlier than `now` and no earlier than the release of any
    /// outstanding lock. Returns the cycle at which the lock was granted.
    pub fn acquire_lock(&mut self, now: u64, duration: u64) -> u64 {
        let start = self.earliest_access(now);
        self.locked_until = start + duration;
        self.total_locked_cycles += duration;
        self.total_locks += 1;
        start
    }

    /// Cumulative cycles spent locked since creation.
    pub fn total_locked_cycles(&self) -> u64 {
        self.total_locked_cycles
    }

    /// Number of lock acquisitions since creation.
    pub fn total_locks(&self) -> u64 {
        self.total_locks
    }
}

/// The DRAM channel behind the integrated memory controller (§2.1: "the
/// DRAM bus connects the IMC schedulers to the DRAM").
///
/// Every LLC miss occupies the channel for a fixed service time; misses
/// arriving while the channel is busy queue behind it (first-come,
/// first-served in global cycle order). A tenant that saturates the
/// channel — the multi-threaded cleansing attacker streaming the whole
/// LLC — therefore inflates every other tenant's effective miss latency,
/// which is how the cleansing attack slows even victims whose accesses
/// already missed (and dilates their batch periods).
#[derive(Debug, Clone, Default)]
pub struct Dram {
    next_free: u64,
    service_cycles: u64,
    total_requests: u64,
    total_wait_cycles: u64,
}

impl Dram {
    /// Creates a channel with the given per-miss service time. A service
    /// time of 0 disables queueing (infinite bandwidth).
    pub fn new(service_cycles: u64) -> Self {
        Dram { next_free: 0, service_cycles, ..Dram::default() }
    }

    /// Serves one miss arriving at global cycle `now`; returns the cycle
    /// at which service *starts* (the caller adds its own transfer
    /// latency on top).
    pub fn serve(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.next_free = start + self.service_cycles;
        self.total_requests += 1;
        self.total_wait_cycles += start - now;
        start
    }

    /// Number of misses served.
    pub fn total_requests(&self) -> u64 {
        self.total_requests
    }

    /// Mean queueing wait per request, in cycles.
    pub fn mean_wait_cycles(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.total_wait_cycles as f64 / self.total_requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_idle_channel_serves_immediately() {
        let mut d = Dram::new(40);
        assert_eq!(d.serve(100), 100);
        assert_eq!(d.serve(200), 200);
        assert_eq!(d.mean_wait_cycles(), 0.0);
    }

    #[test]
    fn dram_back_to_back_requests_queue() {
        let mut d = Dram::new(40);
        assert_eq!(d.serve(0), 0);
        assert_eq!(d.serve(10), 40); // waits 30
        assert_eq!(d.serve(10), 80); // waits 70
        assert_eq!(d.total_requests(), 3);
        assert!((d.mean_wait_cycles() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dram_zero_service_never_queues() {
        let mut d = Dram::new(0);
        assert_eq!(d.serve(5), 5);
        assert_eq!(d.serve(5), 5);
    }

    #[test]
    fn dram_saturation_self_regulates() {
        // A saturating stream's waits grow with queue pressure but stay
        // bounded when arrivals are throttled by their own service.
        let mut d = Dram::new(40);
        let mut t = 0;
        for _ in 0..1000 {
            let start = d.serve(t);
            t = start + 40; // issuer waits for its own transfer
        }
        assert_eq!(t, 1000 * 40 + 40 - 40);
    }

    #[test]
    fn unlocked_bus_grants_immediately() {
        let bus = Bus::new();
        assert_eq!(bus.earliest_access(100), 100);
        assert!(!bus.is_locked_at(100));
    }

    #[test]
    fn lock_delays_accesses() {
        let mut bus = Bus::new();
        let start = bus.acquire_lock(10, 50);
        assert_eq!(start, 10);
        assert!(bus.is_locked_at(10));
        assert!(bus.is_locked_at(59));
        assert!(!bus.is_locked_at(60));
        assert_eq!(bus.earliest_access(30), 60);
        assert_eq!(bus.earliest_access(60), 60);
        assert_eq!(bus.earliest_access(100), 100);
    }

    #[test]
    fn locks_queue_back_to_back() {
        let mut bus = Bus::new();
        assert_eq!(bus.acquire_lock(0, 100), 0);
        // Second lock requested at t=10 waits until 100.
        assert_eq!(bus.acquire_lock(10, 100), 100);
        assert_eq!(bus.earliest_access(0), 200);
        assert_eq!(bus.total_locks(), 2);
        assert_eq!(bus.total_locked_cycles(), 200);
    }

    #[test]
    fn continuous_locking_starves_the_bus() {
        // The attack pattern: repeated atomics keep the bus locked with no
        // usable gap.
        let mut bus = Bus::new();
        let mut t = 0;
        for _ in 0..100 {
            t = bus.acquire_lock(t, 400) + 400;
        }
        // A victim arriving at cycle 1 can only start at the very end.
        assert_eq!(bus.earliest_access(1), 100 * 400);
    }

    #[test]
    fn duty_cycled_locking_leaves_gaps() {
        // In-order execution: a victim access arriving in the gap between
        // two duty-cycled locks proceeds immediately, because the second
        // lock has not been placed yet when the victim (earlier in global
        // time) executes.
        let mut bus = Bus::new();
        bus.acquire_lock(0, 100); // locked [0, 100)
        assert_eq!(bus.earliest_access(150), 150); // gap: proceeds at once
        bus.acquire_lock(200, 100); // locked [200, 300)
        assert_eq!(bus.earliest_access(250), 300); // inside second lock
        assert_eq!(bus.earliest_access(350), 350); // after it
    }
}
