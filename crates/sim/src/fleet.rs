//! Fleet scenario generator: thousands of heterogeneous tenant VMs on
//! one synthetic timeline, for exercising the engine at cloud-host
//! scale (50k sessions) where simulating every VM's cache behaviour
//! tick-by-tick ([`crate::server`]) would dominate the experiment.
//!
//! Each tenant is stamped from a [`VmTemplate`] — a closed-form signal
//! model (baseline, periodic component, jitter) of one catalogue
//! application's PCM trace shape — rather than a full [`crate::cache`]
//! simulation: the engine under test only sees `(AccessNum, MissNum)`
//! per sample, so the template preserves exactly what reaches it. The
//! catalogue side of the mapping lives in `memdos-workloads`
//! (`Application::fleet_template`), which depends on this crate and not
//! vice versa.
//!
//! Scheduling is what makes the scenario *fleet-shaped*:
//!
//! * **staggered arrivals** — tenants come up spread across the opening
//!   stretch of the timeline, not in one thundering herd;
//! * **zipf-skewed activity** — each tenant draws a Zipf rank that sets
//!   its sampling interval, so a few tenants are chatty and the long
//!   tail is quiet, the shape real multi-tenant hosts show;
//! * **churn** — a seeded fraction of tenants departs mid-timeline
//!   (an explicit close) and returns later, exercising the engine's
//!   close/reopen generation machinery and, under a memory ceiling,
//!   its eviction path.
//!
//! Generation is a pure function of [`FleetConfig`] (including the
//! seed): the iterator merges per-tenant event streams through a binary
//! heap keyed by `(tick, tenant)`, so items arrive in deterministic
//! global timeline order at `O(log n)` per item, streaming — the whole
//! fleet is never materialised.

use crate::rng::{derive_seed, Rng, Zipf};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Closed-form signal model of one application's PCM trace: the shape a
/// [`crate::pcm`] sampler would report for a VM running it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTemplate {
    /// Application name (tenant names embed it).
    pub app: &'static str,
    /// Baseline `AccessNum` per sample.
    pub base_access: f64,
    /// Peak-to-baseline swing of the periodic `AccessNum` component
    /// (0 for non-periodic applications).
    pub amp_access: f64,
    /// Baseline `MissNum` per sample.
    pub base_miss: f64,
    /// Periodic `MissNum` swing.
    pub amp_miss: f64,
    /// Period of the repeating phase pattern, in ticks (0 = none).
    pub period_ticks: u64,
    /// Relative Gaussian jitter applied to both statistics.
    pub jitter: f64,
}

impl VmTemplate {
    /// The template's `(AccessNum, MissNum)` at local tick `t`, with
    /// per-tenant deterministic jitter from `rng`.
    fn sample(&self, t: u64, rng: &mut Rng) -> (f64, f64) {
        let phase_high = match self.period_ticks {
            0 => false,
            p => (t % p) < p / 2,
        };
        let (a, m) = if phase_high {
            (self.base_access + self.amp_access, self.base_miss + self.amp_miss)
        } else {
            (self.base_access, self.base_miss)
        };
        let access = a * (1.0 + self.jitter * rng.next_gaussian());
        let miss = m * (1.0 + self.jitter * rng.next_gaussian());
        (access.max(0.0), miss.max(0.0))
    }
}

/// One activity window of a scripted attack: the attacker is live on
/// `[from, until)` and exerts `severity` pressure on every co-located
/// tenant while unmitigated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackWindow {
    /// First tick the attacker is active (inclusive).
    pub from: u64,
    /// First tick past the window (exclusive).
    pub until: u64,
    /// Fraction of every victim's `AccessNum` the attack steals while
    /// the attacker runs unthrottled, in `[0, 1]`. A window with
    /// severity `0` models an attacker-shaped trace change with no
    /// victim impact (e.g. a benign phase change).
    pub severity: f64,
}

impl AttackWindow {
    /// Whether the window covers tick `t`.
    pub fn active(&self, t: u64) -> bool {
        t >= self.from && t < self.until
    }
}

/// A ground-truth-labelled attacker scripted into a fleet scenario.
///
/// This is the closed-form counterpart of the cycle-accurate attack VMs
/// in [`crate::attack`]: while a window is active the labelled tenant's
/// own `AccessNum` collapses by `collapse` (a bus-locking loop issues
/// few ordinary accesses — the signature the SDS detectors key on) and
/// every *other* tenant's `AccessNum` degrades by the window severity,
/// scaled by whatever mitigation the respond loop has applied to the
/// attacker via [`FleetGenerator::set_throttle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetAttack {
    /// Tenant index of the labelled attacker.
    pub attacker: u32,
    /// The attacker's own access collapse while a window is active, in
    /// `[0, 1]`.
    pub collapse: f64,
    /// First activity window.
    pub first: AttackWindow,
    /// Optional second window (quiet-then-resume scenarios).
    pub second: Option<AttackWindow>,
}

impl FleetAttack {
    /// The window covering tick `t`, if any.
    pub fn window_at(&self, t: u64) -> Option<AttackWindow> {
        if self.first.active(t) {
            Some(self.first)
        } else {
            self.second.filter(|w| w.active(t))
        }
    }

    fn validate(&self, tenants: u32) -> Result<(), String> {
        if self.attacker >= tenants {
            return Err("attack.attacker must index a tenant".to_string());
        }
        if !(0.0..=1.0).contains(&self.collapse) {
            return Err("attack.collapse must be within [0, 1]".to_string());
        }
        for w in std::iter::once(self.first).chain(self.second) {
            if w.from >= w.until {
                return Err("attack window must satisfy from < until".to_string());
            }
            if !(0.0..=1.0).contains(&w.severity) {
                return Err("attack window severity must be within [0, 1]".to_string());
            }
        }
        Ok(())
    }
}

/// Mitigation level the respond loop has applied to one tenant —
/// the fleet-scale counterpart of [`crate::hypervisor`] execution
/// throttling ([`crate::hypervisor::Hypervisor::throttle`] /
/// [`crate::hypervisor::Hypervisor::pause`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThrottleLevel {
    /// Unrestricted.
    #[default]
    Run,
    /// Execution-throttled: the tenant runs at [`THROTTLE_DUTY`] duty,
    /// and so does any pressure it exerts.
    Throttled,
    /// Fully paused: the tenant makes no progress and emits no samples
    /// (its schedule keeps advancing so a later resume picks up).
    Paused,
}

/// Duty factor of a [`ThrottleLevel::Throttled`] tenant: its own trace
/// and any attack pressure it exerts both scale by this.
pub const THROTTLE_DUTY: f64 = 0.25;

impl ThrottleLevel {
    /// Duty factor: 1 running, [`THROTTLE_DUTY`] throttled, 0 paused.
    pub fn duty(self) -> f64 {
        match self {
            ThrottleLevel::Run => 1.0,
            ThrottleLevel::Throttled => THROTTLE_DUTY,
            ThrottleLevel::Paused => 0.0,
        }
    }
}

/// Parameters of one fleet scenario. The scenario is a pure function of
/// this struct — same config, same item sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of tenant VMs.
    pub tenants: u32,
    /// Timeline length in ticks; no event is scheduled at or past it.
    pub span_ticks: u64,
    /// Zipf exponent of the activity skew (larger = fewer chatty
    /// tenants carrying more of the traffic).
    pub zipf_s: f64,
    /// Sampling interval of the chattiest rank, in ticks.
    pub min_interval: u64,
    /// Sampling interval of the quietest rank, in ticks.
    pub max_interval: u64,
    /// Per-tenant probability of one departure/return churn cycle.
    pub churn: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Optional scripted attacker with ground-truth label.
    pub attack: Option<FleetAttack>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 1_000,
            span_ticks: 4_096,
            zipf_s: 1.1,
            min_interval: 1,
            max_interval: 32,
            churn: 0.2,
            seed: 0xF1EE7,
            attack: None,
        }
    }
}

impl FleetConfig {
    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("tenants must be positive".to_string());
        }
        if self.span_ticks == 0 {
            return Err("span_ticks must be positive".to_string());
        }
        if !(self.zipf_s > 0.0) {
            return Err("zipf_s must be positive".to_string());
        }
        if self.min_interval == 0 || self.max_interval < self.min_interval {
            return Err("intervals must satisfy 1 <= min_interval <= max_interval".to_string());
        }
        if !(0.0..=1.0).contains(&self.churn) {
            return Err("churn must be within [0, 1]".to_string());
        }
        if let Some(attack) = &self.attack {
            attack.validate(self.tenants)?;
        }
        Ok(())
    }
}

/// One scheduled fleet event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetItem {
    /// Global timeline tick.
    pub tick: u64,
    /// Tenant index in `[0, tenants)`.
    pub tenant: u32,
    /// Index into the template slice this tenant was stamped from.
    pub template: u32,
    /// What happens.
    pub kind: FleetEventKind,
}

/// The kind of a [`FleetItem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEventKind {
    /// One PCM sample.
    Sample {
        /// `AccessNum` for this tick.
        access: f64,
        /// `MissNum` for this tick.
        miss: f64,
    },
    /// The tenant departs (explicit close; it may return later).
    Close,
}

/// Ranks the activity skew into a concrete sampling interval.
const ACTIVITY_RANKS: u64 = 64;

/// Per-tenant schedule state.
#[derive(Debug)]
struct Tenant {
    rng: Rng,
    template: u32,
    /// Ticks between this tenant's samples (zipf-ranked).
    interval: u64,
    /// Local sample clock, drives the template phase.
    local_tick: u64,
    /// Departure tick of the scheduled churn cycle, if any.
    depart_at: Option<u64>,
    /// Return tick after departure, if any.
    return_at: Option<u64>,
    /// A close is due before the next sample.
    closing: bool,
}

/// The streaming fleet generator. Create with [`FleetGenerator::new`],
/// consume as an iterator of [`FleetItem`]s in global `(tick, tenant)`
/// order.
#[derive(Debug)]
pub struct FleetGenerator {
    config: FleetConfig,
    templates: usize,
    tenants: Vec<Tenant>,
    /// Next event per live tenant, keyed `(tick, tenant)`.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Mitigation level per tenant, set by the respond loop.
    throttle: Vec<ThrottleLevel>,
}

impl FleetGenerator {
    /// Builds the generator for `config` over `templates` (tenant `i`
    /// is stamped from a seeded draw over the slice).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for an invalid `config` or
    /// an empty template slice.
    pub fn new(config: FleetConfig, templates: &[VmTemplate]) -> Result<Self, String> {
        config.validate()?;
        if templates.is_empty() {
            return Err("fleet needs at least one template".to_string());
        }
        let zipf = Zipf::new(ACTIVITY_RANKS, config.zipf_s);
        let stagger = (config.span_ticks / 8).max(1);
        let mut tenants = Vec::with_capacity(config.tenants as usize);
        let mut heap = BinaryHeap::with_capacity(config.tenants as usize);
        for i in 0..config.tenants {
            let mut rng = Rng::new(derive_seed(config.seed, i as u64));
            let template = rng.next_below(templates.len() as u64) as u32;
            // Zipf rank 0 is the most probable draw, so it maps to the
            // *quiet* end: the long tail of tenants samples slowly and
            // the rare high ranks are the chatty minority.
            let rank = zipf.sample(&mut rng);
            let interval = config.max_interval
                - rank * (config.max_interval - config.min_interval) / ACTIVITY_RANKS.max(1);
            let arrival = rng.next_below(stagger);
            let (depart_at, return_at) = if rng.chance(config.churn) {
                // One churn cycle: depart somewhere in the middle
                // half of the timeline, return after a gap.
                let span = config.span_ticks;
                let depart = span / 4 + rng.next_below((span / 2).max(1));
                let gap = 1 + rng.next_below((span / 8).max(1));
                let ret = depart + gap;
                (Some(depart), if ret < span { Some(ret) } else { None })
            } else {
                (None, None)
            };
            tenants.push(Tenant {
                rng,
                template,
                interval: interval.max(1),
                local_tick: 0,
                depart_at,
                return_at,
                closing: false,
            });
            if arrival < config.span_ticks {
                heap.push(Reverse((arrival, i)));
            }
        }
        let throttle = vec![ThrottleLevel::Run; config.tenants as usize];
        Ok(FleetGenerator {
            config,
            templates: templates.len(),
            tenants,
            heap,
            throttle,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Ground-truth attacker index, if the scenario scripts one.
    pub fn attacker(&self) -> Option<u32> {
        self.config.attack.map(|a| a.attacker)
    }

    /// Applies a mitigation level to `tenant` — the feedback edge of the
    /// respond loop. Takes effect from the tenant's next scheduled
    /// sample. Returns `false` for an unknown tenant.
    pub fn set_throttle(&mut self, tenant: u32, level: ThrottleLevel) -> bool {
        match self.throttle.get_mut(tenant as usize) {
            Some(slot) => {
                *slot = level;
                true
            }
            None => false,
        }
    }

    /// Current mitigation level of `tenant`.
    pub fn throttle_of(&self, tenant: u32) -> Option<ThrottleLevel> {
        self.throttle.get(tenant as usize).copied()
    }

    /// The template index tenant `i` was stamped from.
    pub fn template_of(&self, tenant: u32) -> Option<u32> {
        self.tenants.get(tenant as usize).map(|t| t.template)
    }

    /// Number of templates the generator draws from.
    pub fn template_count(&self) -> usize {
        self.templates
    }

    /// Emits the event for `(tick, tenant)` and schedules the tenant's
    /// next one. The caller resolves the template slice; the item only
    /// carries the index, so the generator never borrows the templates.
    fn step(&mut self, tick: u64, idx: u32, templates: &[VmTemplate]) -> Option<FleetItem> {
        let span = self.config.span_ticks;
        let t = self.tenants.get_mut(idx as usize)?;
        if t.closing {
            // Departure: emit the close, then schedule the return leg
            // (if the cycle has one inside the timeline).
            t.closing = false;
            t.depart_at = None;
            if let Some(ret) = t.return_at.take() {
                self.heap.push(Reverse((ret, idx)));
            }
            return Some(FleetItem {
                tick,
                tenant: idx,
                template: t.template,
                kind: FleetEventKind::Close,
            });
        }
        let level = self.throttle.get(idx as usize).copied().unwrap_or_default();
        let emitted = if level == ThrottleLevel::Paused {
            // A paused VM makes no progress: no sample, local clock
            // frozen — but its schedule keeps ticking so a later
            // resume picks up immediately.
            None
        } else {
            let tpl = templates.get(t.template as usize)?;
            let (mut access, mut miss) = tpl.sample(t.local_tick, &mut t.rng);
            t.local_tick += 1;
            // An execution-throttled tenant runs at reduced duty.
            access *= level.duty();
            miss *= level.duty();
            if let Some(atk) = self.config.attack {
                if let Some(w) = atk.window_at(tick) {
                    if idx == atk.attacker {
                        // The attack payload's own trace: ordinary
                        // accesses collapse while the locking loop runs.
                        access *= (1.0 - atk.collapse).max(0.0);
                    } else {
                        // Victim-side pressure, scaled by whatever duty
                        // the respond loop has left the attacker.
                        let duty = self
                            .throttle
                            .get(atk.attacker as usize)
                            .copied()
                            .unwrap_or_default()
                            .duty();
                        access *= (1.0 - w.severity * duty).max(0.0);
                    }
                }
            }
            Some((access, miss))
        };
        let next = tick + t.interval;
        match t.depart_at {
            // The departure falls before the next sample: close next.
            Some(depart) if depart <= next => {
                t.closing = true;
                self.heap.push(Reverse((depart.max(tick + 1), idx)));
            }
            _ => {
                if next < span {
                    self.heap.push(Reverse((next, idx)));
                }
            }
        }
        let (access, miss) = emitted?;
        Some(FleetItem {
            tick,
            tenant: idx,
            template: t.template,
            kind: FleetEventKind::Sample { access, miss },
        })
    }

    /// Pulls the next item in global timeline order. An explicit method
    /// (rather than `Iterator`) because the caller owns the template
    /// slice; [`FleetGenerator::drive`] adapts it to a closure loop.
    pub fn next_item(&mut self, templates: &[VmTemplate]) -> Option<FleetItem> {
        loop {
            let Reverse((tick, idx)) = self.heap.pop()?;
            if tick >= self.config.span_ticks {
                continue;
            }
            if let Some(item) = self.step(tick, idx, templates) {
                return Some(item);
            }
        }
    }

    /// Runs the whole scenario, invoking `f` per item in timeline
    /// order. Returns the number of items emitted.
    pub fn drive(&mut self, templates: &[VmTemplate], mut f: impl FnMut(FleetItem)) -> u64 {
        let mut n = 0;
        while let Some(item) = self.next_item(templates) {
            f(item);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_templates() -> Vec<VmTemplate> {
        vec![
            VmTemplate {
                app: "flat",
                base_access: 1_000.0,
                amp_access: 0.0,
                base_miss: 100.0,
                amp_miss: 0.0,
                period_ticks: 0,
                jitter: 0.01,
            },
            VmTemplate {
                app: "square",
                base_access: 400.0,
                amp_access: 800.0,
                base_miss: 40.0,
                amp_miss: 60.0,
                period_ticks: 50,
                jitter: 0.02,
            },
        ]
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            tenants: 64,
            span_ticks: 512,
            churn: 0.5,
            seed: 7,
            ..FleetConfig::default()
        }
    }

    fn collect(config: FleetConfig, templates: &[VmTemplate]) -> Vec<FleetItem> {
        let mut gen = FleetGenerator::new(config, templates).unwrap();
        let mut items = Vec::new();
        gen.drive(templates, |it| items.push(it));
        items
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let templates = test_templates();
        let a = collect(small_config(), &templates);
        let b = collect(small_config(), &templates);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = collect(FleetConfig { seed: 8, ..small_config() }, &templates);
        assert_ne!(a, c, "different seed, different scenario");
    }

    #[test]
    fn items_arrive_in_timeline_order_within_span() {
        let templates = test_templates();
        let items = collect(small_config(), &templates);
        let mut last = (0, 0);
        for it in &items {
            assert!(it.tick < small_config().span_ticks);
            let key = (it.tick, it.tenant);
            assert!(key >= last, "out of order: {key:?} after {last:?}");
            last = key;
        }
    }

    #[test]
    fn every_tenant_appears_and_templates_are_heterogeneous() {
        let templates = test_templates();
        let config = small_config();
        let items = collect(config, &templates);
        let mut seen = vec![false; config.tenants as usize];
        let mut tpl_seen = vec![false; templates.len()];
        for it in &items {
            if let Some(s) = seen.get_mut(it.tenant as usize) {
                *s = true;
            }
            if let Some(s) = tpl_seen.get_mut(it.template as usize) {
                *s = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every tenant schedules at least one event");
        assert!(tpl_seen.iter().all(|&s| s), "both templates are in use");
    }

    #[test]
    fn churn_emits_closes_followed_by_returns() {
        let templates = test_templates();
        let items = collect(small_config(), &templates);
        let closes =
            items.iter().filter(|it| it.kind == FleetEventKind::Close).count();
        assert!(closes > 0, "churn 0.5 over 64 tenants must close some");
        // At least one tenant samples again after its close.
        let mut returned = false;
        let mut closed: Vec<bool> = vec![false; 64];
        for it in &items {
            match it.kind {
                FleetEventKind::Close => {
                    if let Some(c) = closed.get_mut(it.tenant as usize) {
                        *c = true;
                    }
                }
                FleetEventKind::Sample { .. } => {
                    if closed.get(it.tenant as usize).copied().unwrap_or(false) {
                        returned = true;
                    }
                }
            }
        }
        assert!(returned, "some churned tenant returns inside the timeline");
    }

    #[test]
    fn activity_is_skewed() {
        let templates = test_templates();
        let config = FleetConfig { tenants: 256, churn: 0.0, ..small_config() };
        let items = collect(config, &templates);
        let mut counts = vec![0u64; 256];
        for it in &items {
            if let Some(c) = counts.get_mut(it.tenant as usize) {
                *c += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.iter().take(26).sum::<u64>();
        let total = counts.iter().sum::<u64>();
        // The chatty decile carries a far outsized share (well past its
        // proportional 10%).
        assert!(
            top * 4 > total,
            "top 10% of tenants should carry an outsized share (top {top} of {total})"
        );
    }

    #[test]
    fn samples_follow_the_template_shape() {
        let templates = test_templates();
        let config = FleetConfig { tenants: 8, churn: 0.0, ..small_config() };
        let items = collect(config, &templates);
        for it in &items {
            if let FleetEventKind::Sample { access, miss } = it.kind {
                assert!(access >= 0.0 && miss >= 0.0);
                assert!(access.is_finite() && miss.is_finite());
            }
        }
    }

    fn attack_config() -> FleetConfig {
        FleetConfig {
            tenants: 4,
            span_ticks: 400,
            min_interval: 1,
            max_interval: 1,
            churn: 0.0,
            seed: 11,
            attack: Some(FleetAttack {
                attacker: 1,
                collapse: 0.9,
                first: AttackWindow { from: 100, until: 300, severity: 0.4 },
                second: None,
            }),
            ..FleetConfig::default()
        }
    }

    /// Mean access per tenant over a tick range.
    fn mean_access(items: &[FleetItem], tenant: u32, from: u64, until: u64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for it in items {
            if it.tenant == tenant && it.tick >= from && it.tick < until {
                if let FleetEventKind::Sample { access, .. } = it.kind {
                    sum += access;
                    n += 1;
                }
            }
        }
        sum / (n.max(1) as f64)
    }

    #[test]
    fn attack_window_collapses_attacker_and_degrades_victims() {
        let templates = test_templates();
        let items = collect(attack_config(), &templates);
        let atk_before = mean_access(&items, 1, 0, 100);
        let atk_during = mean_access(&items, 1, 120, 280);
        assert!(
            atk_during < atk_before * 0.2,
            "attacker access must collapse by ~collapse: {atk_before} -> {atk_during}"
        );
        let vic_before = mean_access(&items, 0, 0, 100);
        let vic_during = mean_access(&items, 0, 120, 280);
        let ratio = vic_during / vic_before;
        assert!(
            (0.5..0.7).contains(&ratio),
            "victim access must degrade by ~severity: ratio {ratio}"
        );
        let vic_after = mean_access(&items, 0, 300, 400);
        assert!(vic_after / vic_before > 0.9, "victims recover after the window");
    }

    #[test]
    fn throttling_the_attacker_restores_victims_proportionally() {
        let templates = test_templates();
        let mut gen = FleetGenerator::new(attack_config(), &templates).unwrap();
        assert_eq!(gen.attacker(), Some(1));
        assert!(gen.set_throttle(1, ThrottleLevel::Throttled));
        assert!(!gen.set_throttle(99, ThrottleLevel::Throttled));
        let mut items = Vec::new();
        gen.drive(&templates, |it| items.push(it));
        // Residual victim pressure is severity * THROTTLE_DUTY = 0.1.
        let vic_before = mean_access(&items, 0, 0, 100);
        let vic_during = mean_access(&items, 0, 120, 280);
        let ratio = vic_during / vic_before;
        assert!(
            (0.85..0.95).contains(&ratio),
            "throttled attacker leaves only residual pressure: ratio {ratio}"
        );
        // The attacker's own trace also runs at reduced duty.
        let atk_before_throttled = mean_access(&items, 1, 0, 100);
        let flat = 1_000.0;
        assert!(atk_before_throttled < flat * 0.5);
    }

    #[test]
    fn paused_tenants_emit_nothing_until_resumed() {
        let templates = test_templates();
        let mut gen = FleetGenerator::new(attack_config(), &templates).unwrap();
        gen.set_throttle(1, ThrottleLevel::Paused);
        let mut items = Vec::new();
        // Drain the first half of the timeline paused, then resume.
        while let Some(it) = gen.next_item(&templates) {
            if it.tick >= 200 {
                items.push(it);
                break;
            }
            items.push(it);
        }
        assert!(
            items.iter().all(|it| it.tenant != 1),
            "a paused tenant emits no samples"
        );
        gen.set_throttle(1, ThrottleLevel::Run);
        let mut resumed = false;
        while let Some(it) = gen.next_item(&templates) {
            if it.tenant == 1 {
                resumed = true;
                break;
            }
        }
        assert!(resumed, "a resumed tenant samples again");
    }

    #[test]
    fn rejects_invalid_attack() {
        let templates = test_templates();
        let base = attack_config();
        let tweak = |f: fn(&mut FleetAttack)| {
            let mut config = base;
            let mut atk = config.attack.unwrap();
            f(&mut atk);
            config.attack = Some(atk);
            config
        };
        for bad in [
            tweak(|a| a.attacker = 4),
            tweak(|a| a.collapse = 1.5),
            tweak(|a| a.first.until = a.first.from),
            tweak(|a| a.first.severity = -0.1),
            tweak(|a| a.second = Some(AttackWindow { from: 9, until: 3, severity: 0.1 })),
        ] {
            assert!(FleetGenerator::new(bad, &templates).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_invalid_config() {
        let templates = test_templates();
        for bad in [
            FleetConfig { tenants: 0, ..FleetConfig::default() },
            FleetConfig { span_ticks: 0, ..FleetConfig::default() },
            FleetConfig { zipf_s: 0.0, ..FleetConfig::default() },
            FleetConfig { min_interval: 0, ..FleetConfig::default() },
            FleetConfig { min_interval: 9, max_interval: 3, ..FleetConfig::default() },
            FleetConfig { churn: 1.5, ..FleetConfig::default() },
        ] {
            assert!(FleetGenerator::new(bad, &templates).is_err(), "{bad:?}");
        }
        assert!(FleetGenerator::new(FleetConfig::default(), &[]).is_err());
    }
}
