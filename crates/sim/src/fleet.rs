//! Fleet scenario generator: thousands of heterogeneous tenant VMs on
//! one synthetic timeline, for exercising the engine at cloud-host
//! scale (50k sessions) where simulating every VM's cache behaviour
//! tick-by-tick ([`crate::server`]) would dominate the experiment.
//!
//! Each tenant is stamped from a [`VmTemplate`] — a closed-form signal
//! model (baseline, periodic component, jitter) of one catalogue
//! application's PCM trace shape — rather than a full [`crate::cache`]
//! simulation: the engine under test only sees `(AccessNum, MissNum)`
//! per sample, so the template preserves exactly what reaches it. The
//! catalogue side of the mapping lives in `memdos-workloads`
//! (`Application::fleet_template`), which depends on this crate and not
//! vice versa.
//!
//! Scheduling is what makes the scenario *fleet-shaped*:
//!
//! * **staggered arrivals** — tenants come up spread across the opening
//!   stretch of the timeline, not in one thundering herd;
//! * **zipf-skewed activity** — each tenant draws a Zipf rank that sets
//!   its sampling interval, so a few tenants are chatty and the long
//!   tail is quiet, the shape real multi-tenant hosts show;
//! * **churn** — a seeded fraction of tenants departs mid-timeline
//!   (an explicit close) and returns later, exercising the engine's
//!   close/reopen generation machinery and, under a memory ceiling,
//!   its eviction path.
//!
//! Generation is a pure function of [`FleetConfig`] (including the
//! seed): the iterator merges per-tenant event streams through a binary
//! heap keyed by `(tick, tenant)`, so items arrive in deterministic
//! global timeline order at `O(log n)` per item, streaming — the whole
//! fleet is never materialised.

use crate::rng::{derive_seed, Rng, Zipf};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Closed-form signal model of one application's PCM trace: the shape a
/// [`crate::pcm`] sampler would report for a VM running it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmTemplate {
    /// Application name (tenant names embed it).
    pub app: &'static str,
    /// Baseline `AccessNum` per sample.
    pub base_access: f64,
    /// Peak-to-baseline swing of the periodic `AccessNum` component
    /// (0 for non-periodic applications).
    pub amp_access: f64,
    /// Baseline `MissNum` per sample.
    pub base_miss: f64,
    /// Periodic `MissNum` swing.
    pub amp_miss: f64,
    /// Period of the repeating phase pattern, in ticks (0 = none).
    pub period_ticks: u64,
    /// Relative Gaussian jitter applied to both statistics.
    pub jitter: f64,
}

impl VmTemplate {
    /// The template's `(AccessNum, MissNum)` at local tick `t`, with
    /// per-tenant deterministic jitter from `rng`.
    fn sample(&self, t: u64, rng: &mut Rng) -> (f64, f64) {
        let phase_high = match self.period_ticks {
            0 => false,
            p => (t % p) < p / 2,
        };
        let (a, m) = if phase_high {
            (self.base_access + self.amp_access, self.base_miss + self.amp_miss)
        } else {
            (self.base_access, self.base_miss)
        };
        let access = a * (1.0 + self.jitter * rng.next_gaussian());
        let miss = m * (1.0 + self.jitter * rng.next_gaussian());
        (access.max(0.0), miss.max(0.0))
    }
}

/// Parameters of one fleet scenario. The scenario is a pure function of
/// this struct — same config, same item sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of tenant VMs.
    pub tenants: u32,
    /// Timeline length in ticks; no event is scheduled at or past it.
    pub span_ticks: u64,
    /// Zipf exponent of the activity skew (larger = fewer chatty
    /// tenants carrying more of the traffic).
    pub zipf_s: f64,
    /// Sampling interval of the chattiest rank, in ticks.
    pub min_interval: u64,
    /// Sampling interval of the quietest rank, in ticks.
    pub max_interval: u64,
    /// Per-tenant probability of one departure/return churn cycle.
    pub churn: f64,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 1_000,
            span_ticks: 4_096,
            zipf_s: 1.1,
            min_interval: 1,
            max_interval: 32,
            churn: 0.2,
            seed: 0xF1EE7,
        }
    }
}

impl FleetConfig {
    /// Validates the configuration — the shared `validate()` contract.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("tenants must be positive".to_string());
        }
        if self.span_ticks == 0 {
            return Err("span_ticks must be positive".to_string());
        }
        if !(self.zipf_s > 0.0) {
            return Err("zipf_s must be positive".to_string());
        }
        if self.min_interval == 0 || self.max_interval < self.min_interval {
            return Err("intervals must satisfy 1 <= min_interval <= max_interval".to_string());
        }
        if !(0.0..=1.0).contains(&self.churn) {
            return Err("churn must be within [0, 1]".to_string());
        }
        Ok(())
    }
}

/// One scheduled fleet event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetItem {
    /// Global timeline tick.
    pub tick: u64,
    /// Tenant index in `[0, tenants)`.
    pub tenant: u32,
    /// Index into the template slice this tenant was stamped from.
    pub template: u32,
    /// What happens.
    pub kind: FleetEventKind,
}

/// The kind of a [`FleetItem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetEventKind {
    /// One PCM sample.
    Sample {
        /// `AccessNum` for this tick.
        access: f64,
        /// `MissNum` for this tick.
        miss: f64,
    },
    /// The tenant departs (explicit close; it may return later).
    Close,
}

/// Ranks the activity skew into a concrete sampling interval.
const ACTIVITY_RANKS: u64 = 64;

/// Per-tenant schedule state.
#[derive(Debug)]
struct Tenant {
    rng: Rng,
    template: u32,
    /// Ticks between this tenant's samples (zipf-ranked).
    interval: u64,
    /// Local sample clock, drives the template phase.
    local_tick: u64,
    /// Departure tick of the scheduled churn cycle, if any.
    depart_at: Option<u64>,
    /// Return tick after departure, if any.
    return_at: Option<u64>,
    /// A close is due before the next sample.
    closing: bool,
}

/// The streaming fleet generator. Create with [`FleetGenerator::new`],
/// consume as an iterator of [`FleetItem`]s in global `(tick, tenant)`
/// order.
#[derive(Debug)]
pub struct FleetGenerator {
    config: FleetConfig,
    templates: usize,
    tenants: Vec<Tenant>,
    /// Next event per live tenant, keyed `(tick, tenant)`.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl FleetGenerator {
    /// Builds the generator for `config` over `templates` (tenant `i`
    /// is stamped from a seeded draw over the slice).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem for an invalid `config` or
    /// an empty template slice.
    pub fn new(config: FleetConfig, templates: &[VmTemplate]) -> Result<Self, String> {
        config.validate()?;
        if templates.is_empty() {
            return Err("fleet needs at least one template".to_string());
        }
        let zipf = Zipf::new(ACTIVITY_RANKS, config.zipf_s);
        let stagger = (config.span_ticks / 8).max(1);
        let mut tenants = Vec::with_capacity(config.tenants as usize);
        let mut heap = BinaryHeap::with_capacity(config.tenants as usize);
        for i in 0..config.tenants {
            let mut rng = Rng::new(derive_seed(config.seed, i as u64));
            let template = rng.next_below(templates.len() as u64) as u32;
            // Zipf rank 0 is the most probable draw, so it maps to the
            // *quiet* end: the long tail of tenants samples slowly and
            // the rare high ranks are the chatty minority.
            let rank = zipf.sample(&mut rng);
            let interval = config.max_interval
                - rank * (config.max_interval - config.min_interval) / ACTIVITY_RANKS.max(1);
            let arrival = rng.next_below(stagger);
            let (depart_at, return_at) = if rng.chance(config.churn) {
                // One churn cycle: depart somewhere in the middle
                // half of the timeline, return after a gap.
                let span = config.span_ticks;
                let depart = span / 4 + rng.next_below((span / 2).max(1));
                let gap = 1 + rng.next_below((span / 8).max(1));
                let ret = depart + gap;
                (Some(depart), if ret < span { Some(ret) } else { None })
            } else {
                (None, None)
            };
            tenants.push(Tenant {
                rng,
                template,
                interval: interval.max(1),
                local_tick: 0,
                depart_at,
                return_at,
                closing: false,
            });
            if arrival < config.span_ticks {
                heap.push(Reverse((arrival, i)));
            }
        }
        Ok(FleetGenerator {
            config,
            templates: templates.len(),
            tenants,
            heap,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The template index tenant `i` was stamped from.
    pub fn template_of(&self, tenant: u32) -> Option<u32> {
        self.tenants.get(tenant as usize).map(|t| t.template)
    }

    /// Number of templates the generator draws from.
    pub fn template_count(&self) -> usize {
        self.templates
    }

    /// Emits the event for `(tick, tenant)` and schedules the tenant's
    /// next one. The caller resolves the template slice; the item only
    /// carries the index, so the generator never borrows the templates.
    fn step(&mut self, tick: u64, idx: u32, templates: &[VmTemplate]) -> Option<FleetItem> {
        let span = self.config.span_ticks;
        let t = self.tenants.get_mut(idx as usize)?;
        if t.closing {
            // Departure: emit the close, then schedule the return leg
            // (if the cycle has one inside the timeline).
            t.closing = false;
            t.depart_at = None;
            if let Some(ret) = t.return_at.take() {
                self.heap.push(Reverse((ret, idx)));
            }
            return Some(FleetItem {
                tick,
                tenant: idx,
                template: t.template,
                kind: FleetEventKind::Close,
            });
        }
        let tpl = templates.get(t.template as usize)?;
        let (access, miss) = tpl.sample(t.local_tick, &mut t.rng);
        t.local_tick += 1;
        let next = tick + t.interval;
        match t.depart_at {
            // The departure falls before the next sample: close next.
            Some(depart) if depart <= next => {
                t.closing = true;
                self.heap.push(Reverse((depart.max(tick + 1), idx)));
            }
            _ => {
                if next < span {
                    self.heap.push(Reverse((next, idx)));
                }
            }
        }
        Some(FleetItem {
            tick,
            tenant: idx,
            template: t.template,
            kind: FleetEventKind::Sample { access, miss },
        })
    }

    /// Pulls the next item in global timeline order. An explicit method
    /// (rather than `Iterator`) because the caller owns the template
    /// slice; [`FleetGenerator::drive`] adapts it to a closure loop.
    pub fn next_item(&mut self, templates: &[VmTemplate]) -> Option<FleetItem> {
        loop {
            let Reverse((tick, idx)) = self.heap.pop()?;
            if tick >= self.config.span_ticks {
                continue;
            }
            if let Some(item) = self.step(tick, idx, templates) {
                return Some(item);
            }
        }
    }

    /// Runs the whole scenario, invoking `f` per item in timeline
    /// order. Returns the number of items emitted.
    pub fn drive(&mut self, templates: &[VmTemplate], mut f: impl FnMut(FleetItem)) -> u64 {
        let mut n = 0;
        while let Some(item) = self.next_item(templates) {
            f(item);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_templates() -> Vec<VmTemplate> {
        vec![
            VmTemplate {
                app: "flat",
                base_access: 1_000.0,
                amp_access: 0.0,
                base_miss: 100.0,
                amp_miss: 0.0,
                period_ticks: 0,
                jitter: 0.01,
            },
            VmTemplate {
                app: "square",
                base_access: 400.0,
                amp_access: 800.0,
                base_miss: 40.0,
                amp_miss: 60.0,
                period_ticks: 50,
                jitter: 0.02,
            },
        ]
    }

    fn small_config() -> FleetConfig {
        FleetConfig {
            tenants: 64,
            span_ticks: 512,
            churn: 0.5,
            seed: 7,
            ..FleetConfig::default()
        }
    }

    fn collect(config: FleetConfig, templates: &[VmTemplate]) -> Vec<FleetItem> {
        let mut gen = FleetGenerator::new(config, templates).unwrap();
        let mut items = Vec::new();
        gen.drive(templates, |it| items.push(it));
        items
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let templates = test_templates();
        let a = collect(small_config(), &templates);
        let b = collect(small_config(), &templates);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = collect(FleetConfig { seed: 8, ..small_config() }, &templates);
        assert_ne!(a, c, "different seed, different scenario");
    }

    #[test]
    fn items_arrive_in_timeline_order_within_span() {
        let templates = test_templates();
        let items = collect(small_config(), &templates);
        let mut last = (0, 0);
        for it in &items {
            assert!(it.tick < small_config().span_ticks);
            let key = (it.tick, it.tenant);
            assert!(key >= last, "out of order: {key:?} after {last:?}");
            last = key;
        }
    }

    #[test]
    fn every_tenant_appears_and_templates_are_heterogeneous() {
        let templates = test_templates();
        let config = small_config();
        let items = collect(config, &templates);
        let mut seen = vec![false; config.tenants as usize];
        let mut tpl_seen = vec![false; templates.len()];
        for it in &items {
            if let Some(s) = seen.get_mut(it.tenant as usize) {
                *s = true;
            }
            if let Some(s) = tpl_seen.get_mut(it.template as usize) {
                *s = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every tenant schedules at least one event");
        assert!(tpl_seen.iter().all(|&s| s), "both templates are in use");
    }

    #[test]
    fn churn_emits_closes_followed_by_returns() {
        let templates = test_templates();
        let items = collect(small_config(), &templates);
        let closes =
            items.iter().filter(|it| it.kind == FleetEventKind::Close).count();
        assert!(closes > 0, "churn 0.5 over 64 tenants must close some");
        // At least one tenant samples again after its close.
        let mut returned = false;
        let mut closed: Vec<bool> = vec![false; 64];
        for it in &items {
            match it.kind {
                FleetEventKind::Close => {
                    if let Some(c) = closed.get_mut(it.tenant as usize) {
                        *c = true;
                    }
                }
                FleetEventKind::Sample { .. } => {
                    if closed.get(it.tenant as usize).copied().unwrap_or(false) {
                        returned = true;
                    }
                }
            }
        }
        assert!(returned, "some churned tenant returns inside the timeline");
    }

    #[test]
    fn activity_is_skewed() {
        let templates = test_templates();
        let config = FleetConfig { tenants: 256, churn: 0.0, ..small_config() };
        let items = collect(config, &templates);
        let mut counts = vec![0u64; 256];
        for it in &items {
            if let Some(c) = counts.get_mut(it.tenant as usize) {
                *c += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.iter().take(26).sum::<u64>();
        let total = counts.iter().sum::<u64>();
        // The chatty decile carries a far outsized share (well past its
        // proportional 10%).
        assert!(
            top * 4 > total,
            "top 10% of tenants should carry an outsized share (top {top} of {total})"
        );
    }

    #[test]
    fn samples_follow_the_template_shape() {
        let templates = test_templates();
        let config = FleetConfig { tenants: 8, churn: 0.0, ..small_config() };
        let items = collect(config, &templates);
        for it in &items {
            if let FleetEventKind::Sample { access, miss } = it.kind {
                assert!(access >= 0.0 && miss >= 0.0);
                assert!(access.is_finite() && miss.is_finite());
            }
        }
    }

    #[test]
    fn rejects_invalid_config() {
        let templates = test_templates();
        for bad in [
            FleetConfig { tenants: 0, ..FleetConfig::default() },
            FleetConfig { span_ticks: 0, ..FleetConfig::default() },
            FleetConfig { zipf_s: 0.0, ..FleetConfig::default() },
            FleetConfig { min_interval: 0, ..FleetConfig::default() },
            FleetConfig { min_interval: 9, max_interval: 3, ..FleetConfig::default() },
            FleetConfig { churn: 1.5, ..FleetConfig::default() },
        ] {
            assert!(FleetGenerator::new(bad, &templates).is_err(), "{bad:?}");
        }
        assert!(FleetGenerator::new(FleetConfig::default(), &[]).is_err());
    }
}
