//! Set-associative last-level cache shared between tenant domains.
//!
//! Models the structure the LLC cleansing attack manipulates (§2.2 of the
//! paper): cache lines live in sets; a tenant that touches enough distinct
//! lines mapping to a set evicts other tenants' lines from it, raising
//! their miss counts. Each line is tagged with the *domain* (VM) that
//! loaded it, so per-VM `AccessNum`/`MissNum` counters — the statistics
//! PCM exports — can be maintained exactly.
//!
//! Replacement is true LRU within a set (the E5-2660's LLC is
//! pseudo-LRU; true LRU preserves the eviction behaviour the attack
//! relies on while keeping the model simple and deterministic).

/// Identifier of a cache-ownership domain (one per VM, plus domain 0 for
/// the hypervisor's own monitoring activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u16);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting a
    /// victim line, reported in the payload).
    Miss {
        /// Domain whose line was evicted to make room, if the chosen way
        /// held a valid line.
        evicted: Option<DomainId>,
    },
}

impl CacheOutcome {
    /// Whether this outcome is a miss.
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheOutcome::Miss { .. })
    }
}

/// Per-domain access counters for one sampling interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainCounters {
    /// LLC accesses in the current interval (the paper's `AccessNum`).
    pub accesses: u64,
    /// LLC misses in the current interval (the paper's `MissNum`).
    pub misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    /// Line address (identifies the memory line within the domain).
    addr: u64,
    domain: DomainId,
    valid: bool,
    /// LRU timestamp: global access counter value at last touch.
    last_used: u64,
}

const INVALID_LINE: Line = Line {
    addr: 0,
    domain: DomainId(u16::MAX),
    valid: false,
    last_used: 0,
};

/// Geometry of the simulated LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }
}

impl Default for CacheGeometry {
    /// Scaled-down default: 4096 sets × 20 ways (the paper's LLC is
    /// 20-way; the set count is reduced from 28 672 so experiments run at
    /// interactive speed — working-set sizes in `memdos-workloads` are
    /// scaled to match).
    fn default() -> Self {
        CacheGeometry { sets: 4096, ways: 20 }
    }
}

/// The shared last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    geometry: CacheGeometry,
    lines: Vec<Line>,
    clock: u64,
    counters: Vec<DomainCounters>,
    totals: Vec<DomainCounters>,
    /// Per-set hint: the way most recently hit or filled. Workload inner
    /// loops re-touch the same line often, so checking this way first
    /// usually resolves the access without scanning the whole set. Purely
    /// an accelerator — stale hints fail the tag compare and fall through
    /// to the full scan, so behaviour is identical with or without it.
    mru_way: Vec<u32>,
}

impl Llc {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways == 0`.
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(
            geometry.sets.is_power_of_two() && geometry.sets > 0,
            "set count must be a power of two"
        );
        assert!(geometry.ways > 0, "associativity must be positive");
        Llc {
            geometry,
            lines: vec![INVALID_LINE; geometry.lines()],
            clock: 0,
            counters: Vec::new(),
            totals: Vec::new(),
            mru_way: vec![0; geometry.sets],
        }
    }

    /// Cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Registers a new counter domain and returns its id.
    pub fn register_domain(&mut self) -> DomainId {
        let id = DomainId(self.counters.len() as u16);
        self.counters.push(DomainCounters::default());
        self.totals.push(DomainCounters::default());
        id
    }

    /// Set index a line address maps to.
    pub fn set_of(&self, addr: u64) -> usize {
        (addr as usize) & (self.geometry.sets - 1)
    }

    /// Performs one access by `domain` to line `addr`, updating LRU state
    /// and counters, filling on miss.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `domain` was not registered.
    pub fn access(&mut self, domain: DomainId, addr: u64) -> CacheOutcome {
        debug_assert!((domain.0 as usize) < self.counters.len(), "unregistered domain");
        self.clock += 1;
        let set = self.set_of(addr);
        let base = set * self.geometry.ways;

        if let Some(c) = self.counters.get_mut(domain.0 as usize) {
            c.accesses += 1;
        }
        if let Some(t) = self.totals.get_mut(domain.0 as usize) {
            t.accesses += 1;
        }

        // Fast path: the most recently touched way of this set. Repeated
        // touches of a hot line resolve here in O(1) instead of scanning
        // all `ways` lines of the set.
        let hinted = self.mru_way.get(set).copied().unwrap_or(0) as usize;
        if hinted < self.geometry.ways {
            if let Some(line) = self.lines.get_mut(base + hinted) {
                if line.valid && line.domain == domain && line.addr == addr {
                    line.last_used = self.clock;
                    return CacheOutcome::Hit;
                }
            }
        }

        let ways = &mut self.lines[base..base + self.geometry.ways];

        // Hit path.
        let mut victim = 0usize;
        let mut victim_ts = u64::MAX;
        for (i, line) in ways.iter_mut().enumerate() {
            if line.valid && line.domain == domain && line.addr == addr {
                line.last_used = self.clock;
                if let Some(hint) = self.mru_way.get_mut(set) {
                    *hint = i as u32;
                }
                return CacheOutcome::Hit;
            }
            let ts = if line.valid { line.last_used } else { 0 };
            if ts < victim_ts {
                victim_ts = ts;
                victim = i;
            }
        }

        // Miss: evict LRU (invalid lines have timestamp 0 and win).
        if let Some(c) = self.counters.get_mut(domain.0 as usize) {
            c.misses += 1;
        }
        if let Some(t) = self.totals.get_mut(domain.0 as usize) {
            t.misses += 1;
        }
        // `victim` indexes into `ways` by construction: the selection loop
        // above only assigns in-range positions.
        let evicted = match ways.get_mut(victim) {
            Some(line) => {
                let evicted = if line.valid { Some(line.domain) } else { None };
                *line = Line { addr, domain, valid: true, last_used: self.clock };
                evicted
            }
            None => None,
        };
        if let Some(hint) = self.mru_way.get_mut(set) {
            *hint = victim as u32;
        }
        CacheOutcome::Miss { evicted }
    }

    /// Reads and clears the per-interval counters of `domain` (what PCM
    /// does every `T_PCM`).
    pub fn drain_counters(&mut self, domain: DomainId) -> DomainCounters {
        match self.counters.get_mut(domain.0 as usize) {
            Some(c) => std::mem::take(c),
            None => DomainCounters::default(),
        }
    }

    /// Cumulative counters of `domain` since creation (never reset).
    pub fn totals(&self, domain: DomainId) -> DomainCounters {
        self.totals.get(domain.0 as usize).copied().unwrap_or_default()
    }

    /// Number of valid lines currently owned by `domain` — used by tests
    /// and by the cleansing attacker's probe validation.
    pub fn occupancy(&self, domain: DomainId) -> usize {
        self.lines
            .iter()
            .filter(|l| l.valid && l.domain == domain)
            .count()
    }

    /// Number of valid lines owned by `domain` in one set.
    pub fn set_occupancy(&self, domain: DomainId, set: usize) -> usize {
        let base = set * self.geometry.ways;
        self.lines[base..base + self.geometry.ways]
            .iter()
            .filter(|l| l.valid && l.domain == domain)
            .count()
    }

    /// Invalidates every line (used between experiment stages in tests).
    pub fn flush(&mut self) {
        self.lines.fill(INVALID_LINE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        Llc::new(CacheGeometry { sets: 4, ways: 2 })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        let d = c.register_domain();
        assert!(c.access(d, 0).is_miss());
        assert_eq!(c.access(d, 0), CacheOutcome::Hit);
        let counters = c.drain_counters(d);
        assert_eq!(counters.accesses, 2);
        assert_eq!(counters.misses, 1);
    }

    #[test]
    fn drain_resets_interval_counters_but_not_totals() {
        let mut c = small();
        let d = c.register_domain();
        c.access(d, 0);
        c.drain_counters(d);
        assert_eq!(c.drain_counters(d), DomainCounters::default());
        assert_eq!(c.totals(d).accesses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        let d = c.register_domain();
        // Set 0 holds lines {0, 4, 8, ...} (addr % 4 == 0). Ways = 2.
        c.access(d, 0);
        c.access(d, 4);
        c.access(d, 0); // refresh line 0; line 4 is now LRU
        let out = c.access(d, 8); // evicts line 4
        assert!(out.is_miss());
        assert_eq!(c.access(d, 0), CacheOutcome::Hit); // 0 survived
        assert!(c.access(d, 4).is_miss()); // 4 was evicted
    }

    #[test]
    fn domains_conflict_in_sets_but_never_share_lines() {
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        c.access(a, 0);
        // Same line address from another domain is a *different* line.
        assert!(c.access(b, 0).is_miss());
        assert_eq!(c.access(a, 0), CacheOutcome::Hit);
        assert_eq!(c.access(b, 0), CacheOutcome::Hit);
    }

    #[test]
    fn cross_domain_eviction_is_reported() {
        let mut c = small();
        let victim = c.register_domain();
        let attacker = c.register_domain();
        c.access(victim, 0); // set 0
        // Attacker fills set 0 with two of its own lines, evicting victim.
        let o1 = c.access(attacker, 0);
        let o2 = c.access(attacker, 4);
        assert!(o1.is_miss() && o2.is_miss());
        let evictions = [o1, o2]
            .iter()
            .filter_map(|o| match o {
                CacheOutcome::Miss { evicted } => *evicted,
                _ => None,
            })
            .collect::<Vec<_>>();
        assert!(evictions.contains(&victim));
        // Victim now misses again: the cleansing-attack effect.
        assert!(c.access(victim, 0).is_miss());
    }

    #[test]
    fn occupancy_tracks_ownership() {
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        for addr in 0..4u64 {
            c.access(a, addr);
        }
        assert_eq!(c.occupancy(a), 4);
        assert_eq!(c.occupancy(b), 0);
        assert_eq!(c.set_occupancy(a, 0), 1);
        c.flush();
        assert_eq!(c.occupancy(a), 0);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = Llc::new(CacheGeometry { sets: 64, ways: 8 });
        let d = c.register_domain();
        let ws: Vec<u64> = (0..256).collect(); // 256 lines « 512 capacity
        for &a in &ws {
            c.access(d, a);
        }
        c.drain_counters(d);
        for &a in &ws {
            assert_eq!(c.access(d, a), CacheOutcome::Hit);
        }
        assert_eq!(c.drain_counters(d).misses, 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Llc::new(CacheGeometry { sets: 64, ways: 8 });
        let d = c.register_domain();
        // Streaming over 2× capacity with LRU: every access misses.
        for round in 0..2 {
            for a in 0..1024u64 {
                let out = c.access(d, a);
                if round == 1 {
                    assert!(out.is_miss());
                }
            }
        }
    }

    #[test]
    fn stale_mru_hint_never_changes_outcomes() {
        // Alternate domains and addresses within one set so the hint is
        // wrong on every other access; results must match LRU semantics.
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        assert!(c.access(a, 0).is_miss());
        assert_eq!(c.access(a, 0), CacheOutcome::Hit); // fast path
        assert!(c.access(b, 0).is_miss()); // same set, hint points at a's line
        assert_eq!(c.access(b, 0), CacheOutcome::Hit);
        assert_eq!(c.access(a, 0), CacheOutcome::Hit); // hint stale again
        c.flush();
        assert!(c.access(a, 0).is_miss()); // hinted way is invalid after flush
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        Llc::new(CacheGeometry { sets: 3, ways: 2 });
    }

    #[test]
    fn default_geometry_matches_paper_ways() {
        // The paper's E5-2660 LLC is 20-way set-associative.
        assert_eq!(CacheGeometry::default().ways, 20);
        assert!(CacheGeometry::default().sets.is_power_of_two());
    }
}
