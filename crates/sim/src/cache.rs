//! Set-associative last-level cache shared between tenant domains.
//!
//! Models the structure the LLC cleansing attack manipulates (§2.2 of the
//! paper): cache lines live in sets; a tenant that touches enough distinct
//! lines mapping to a set evicts other tenants' lines from it, raising
//! their miss counts. Each line is tagged with the *domain* (VM) that
//! loaded it, so per-VM `AccessNum`/`MissNum` counters — the statistics
//! PCM exports — can be maintained exactly.
//!
//! Replacement is true LRU within a set (the E5-2660's LLC is
//! pseudo-LRU; true LRU preserves the eviction behaviour the attack
//! relies on while keeping the model simple and deterministic).
//!
//! ## Layout
//!
//! Line metadata is stored structure-of-arrays: per-way LRU timestamps
//! (`ts`, where 0 means *invalid* — the access clock pre-increments, so
//! every valid line carries a timestamp ≥ 1) separate from the per-way
//! address/domain tags, which the hot path never reads. Hits resolve
//! through a per-domain *presence directory* (`shadow[domain][addr]` =
//! way + 1, 0 = absent) maintained exactly on fill/evict/flush, so the
//! common case is O(1) with no tag compare at all; the tag arrays are
//! only consulted to identify eviction victims. Behaviour is identical
//! to the straightforward scan — the directory is an index, not a cache.

/// Identifier of a cache-ownership domain (one per VM, plus domain 0 for
/// the hypervisor's own monitoring activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u16);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting a
    /// victim line, reported in the payload).
    Miss {
        /// Domain whose line was evicted to make room, if the chosen way
        /// held a valid line.
        evicted: Option<DomainId>,
    },
}

impl CacheOutcome {
    /// Whether this outcome is a miss.
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheOutcome::Miss { .. })
    }
}

/// Per-domain access counters for one sampling interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainCounters {
    /// LLC accesses in the current interval (the paper's `AccessNum`).
    pub accesses: u64,
    /// LLC misses in the current interval (the paper's `MissNum`).
    pub misses: u64,
}

/// Interval and cumulative counters of one domain, kept together so one
/// access touches a single stats slot. The hot path bumps only
/// `interval`; `drained` accumulates past intervals when PCM drains, so
/// the all-time totals are `drained + interval` — two counter updates
/// per access become one without losing exactness.
#[derive(Debug, Clone, Copy, Default)]
struct DomainStat {
    interval: DomainCounters,
    drained: DomainCounters,
}

/// Geometry of the simulated LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }
}

impl Default for CacheGeometry {
    /// Scaled-down default: 4096 sets × 20 ways (the paper's LLC is
    /// 20-way; the set count is reduced from 28 672 so experiments run at
    /// interactive speed — working-set sizes in `memdos-workloads` are
    /// scaled to match).
    fn default() -> Self {
        CacheGeometry { sets: 4096, ways: 20 }
    }
}

/// Largest line address tracked by the presence directory. Addresses at
/// or above this fall back to the tag scan (identical behaviour, slower)
/// so a stray huge address cannot balloon the directory allocation.
const DIRECTORY_LIMIT: u64 = 1 << 21;

/// The shared last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    geometry: CacheGeometry,
    /// Per-way LRU timestamp; 0 = invalid way. Valid lines always carry
    /// ts ≥ 1 because the clock pre-increments before every access.
    ///
    /// `u32` on purpose: LRU only needs the *relative order* of the
    /// stamps, and halving their width halves the victim scan's memory
    /// traffic. Before the clock would overflow a `u32`, the stamps are
    /// compacted to their ranks ([`Llc::rebase_timestamps`]) — an
    /// order-preserving renumbering, so replacement decisions are
    /// identical to an unbounded clock.
    ts: Vec<u32>,
    /// Per-way line address; meaningful only where `ts` is non-zero.
    addrs: Vec<u64>,
    /// Per-way owning domain; meaningful only where `ts` is non-zero.
    doms: Vec<u16>,
    clock: u64,
    stats: Vec<DomainStat>,
    /// Presence directory, stored flat so a hit costs a single indexed
    /// load: `shadow[domain * shadow_stride + addr] = way + 1` (0 =
    /// absent). The stride grows on demand (power-of-two steps, capped
    /// at [`DIRECTORY_LIMIT`]) the first time a fill needs a larger
    /// address, re-laying out every domain's region. Maintained exactly
    /// on fill/evict/flush, so a non-zero entry *is* a hit — no tag
    /// verification needed — and every resident line below the stride
    /// has an entry, so a zero entry *is* a miss.
    shadow: Vec<u8>,
    /// Entries per domain in the flat `shadow` array. Addresses at or
    /// above the stride that have never been filled are absent by the
    /// grow-on-fill invariant.
    shadow_stride: usize,
    /// Directory disabled when a way index cannot fit in the `u8` slots
    /// (associativity > 255); every access then uses the tag scan.
    use_directory: bool,
}

impl Llc {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways == 0`.
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(
            geometry.sets.is_power_of_two() && geometry.sets > 0,
            "set count must be a power of two"
        );
        assert!(geometry.ways > 0, "associativity must be positive");
        Llc {
            geometry,
            ts: vec![0; geometry.lines()],
            addrs: vec![0; geometry.lines()],
            doms: vec![u16::MAX; geometry.lines()],
            clock: 0,
            stats: Vec::new(),
            shadow: Vec::new(),
            shadow_stride: 0,
            use_directory: geometry.ways <= u8::MAX as usize,
        }
    }

    /// Cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Registers a new counter domain and returns its id.
    pub fn register_domain(&mut self) -> DomainId {
        let id = DomainId(self.stats.len() as u16);
        self.stats.push(DomainStat::default());
        self.shadow.resize(self.stats.len() * self.shadow_stride, 0);
        id
    }

    /// Grows the presence directory so addresses up to `addr` fit,
    /// re-laying out every domain's region at the new stride. Cold:
    /// runs only the first time a fill outgrows the current stride.
    #[cold]
    fn grow_directory(&mut self, addr: usize) {
        let stride = (addr + 1).next_power_of_two().min(DIRECTORY_LIMIT as usize);
        let mut grown = vec![0u8; self.stats.len() * stride];
        for d in 0..self.stats.len() {
            let old = d * self.shadow_stride;
            if let (Some(src), Some(dst)) = (
                self.shadow.get(old..old + self.shadow_stride),
                grown.get_mut(d * stride..d * stride + self.shadow_stride),
            ) {
                dst.copy_from_slice(src);
            }
        }
        self.shadow = grown;
        self.shadow_stride = stride;
    }

    /// Compacts every valid LRU timestamp to its rank (1-based, in
    /// timestamp order) and resets the clock to the number of valid
    /// lines. Strictly order-preserving — valid stamps are unique, so
    /// ranking them changes no replacement decision, ever — which makes
    /// the `u32` stamp width an implementation detail rather than a
    /// behavioural limit. Cold: fires once every ~4 × 10⁹ accesses.
    #[cold]
    fn rebase_timestamps(&mut self) {
        let mut order: Vec<(u32, u32)> = self
            .ts
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != 0)
            .map(|(i, &t)| (t, i as u32))
            .collect();
        order.sort_unstable();
        for (rank, &(_, i)) in order.iter().enumerate() {
            if let Some(t) = self.ts.get_mut(i as usize) {
                *t = rank as u32 + 1;
            }
        }
        self.clock = order.len() as u64;
    }

    /// Test hook: fast-forwards the access clock so the timestamp rebase
    /// path can be exercised without simulating 4 × 10⁹ accesses.
    #[cfg(test)]
    fn set_clock_for_test(&mut self, clock: u64) {
        self.clock = clock;
    }

    /// Set index a line address maps to.
    pub fn set_of(&self, addr: u64) -> usize {
        (addr as usize) & (self.geometry.sets - 1)
    }

    /// Performs one access by `domain` to line `addr`, updating LRU state
    /// and counters, filling on miss.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `domain` was not registered.
    pub fn access(&mut self, domain: DomainId, addr: u64) -> CacheOutcome {
        debug_assert!((domain.0 as usize) < self.stats.len(), "unregistered domain");
        self.clock += 1;
        if self.clock >= u32::MAX as u64 {
            self.rebase_timestamps();
            self.clock += 1;
        }
        let stamp = self.clock as u32;
        let d = domain.0 as usize;
        let set = self.set_of(addr);
        let base = set * self.geometry.ways;

        if let Some(s) = self.stats.get_mut(d) {
            s.interval.accesses += 1;
        }

        // Fast path: the presence directory resolves hits with a single
        // compare-and-indexed-load. `shadow_stride` is 0 both before any
        // fill and when the directory is disabled, so one range check
        // covers all three gates.
        if (addr as usize) < self.shadow_stride {
            let way = self
                .shadow
                .get(d * self.shadow_stride + addr as usize)
                .copied()
                .unwrap_or(0);
            if way != 0 {
                if let Some(t) = self.ts.get_mut(base + way as usize - 1) {
                    *t = stamp;
                }
                return CacheOutcome::Hit;
            }
            // Directory says absent: this is a miss by construction.
        } else if self.use_directory && addr < DIRECTORY_LIMIT {
            // Tracked address range, directory not grown this far yet:
            // never filled, so absent — a miss by construction.
        } else {
            // Tag-scan hit path for addresses outside the directory.
            let end = base + self.geometry.ways;
            for i in base..end {
                let valid = self.ts.get(i).copied().unwrap_or(0) != 0;
                if valid
                    && self.addrs.get(i).copied() == Some(addr)
                    && self.doms.get(i).copied() == Some(domain.0)
                {
                    if let Some(t) = self.ts.get_mut(i) {
                        *t = stamp;
                    }
                    return CacheOutcome::Hit;
                }
            }
        }

        // Miss: evict LRU (invalid ways have timestamp 0 and win; ties
        // break to the lowest way index, matching the reference scan).
        if let Some(s) = self.stats.get_mut(d) {
            s.interval.misses += 1;
        }
        let mut victim = base;
        let mut victim_ts = u32::MAX;
        for (i, &t) in self.ts[base..base + self.geometry.ways].iter().enumerate() {
            if t < victim_ts {
                victim_ts = t;
                victim = base + i;
            }
        }
        let evicted = if victim_ts != 0 {
            let old_addr = self.addrs.get(victim).copied().unwrap_or(0);
            let old_dom = self.doms.get(victim).copied().unwrap_or(u16::MAX);
            if (old_addr as usize) < self.shadow_stride {
                if let Some(slot) = self
                    .shadow
                    .get_mut(old_dom as usize * self.shadow_stride + old_addr as usize)
                {
                    *slot = 0;
                }
            }
            Some(DomainId(old_dom))
        } else {
            None
        };
        if let Some(t) = self.ts.get_mut(victim) {
            *t = stamp;
        }
        if let Some(a) = self.addrs.get_mut(victim) {
            *a = addr;
        }
        if let Some(o) = self.doms.get_mut(victim) {
            *o = domain.0;
        }
        if self.use_directory && addr < DIRECTORY_LIMIT {
            if addr as usize >= self.shadow_stride {
                self.grow_directory(addr as usize);
            }
            if let Some(slot) = self.shadow.get_mut(d * self.shadow_stride + addr as usize) {
                *slot = (victim - base + 1) as u8;
            }
        }
        CacheOutcome::Miss { evicted }
    }

    /// Reads and clears the per-interval counters of `domain` (what PCM
    /// does every `T_PCM`).
    pub fn drain_counters(&mut self, domain: DomainId) -> DomainCounters {
        match self.stats.get_mut(domain.0 as usize) {
            Some(s) => {
                let c = std::mem::take(&mut s.interval);
                s.drained.accesses += c.accesses;
                s.drained.misses += c.misses;
                c
            }
            None => DomainCounters::default(),
        }
    }

    /// Cumulative counters of `domain` since creation (never reset).
    pub fn totals(&self, domain: DomainId) -> DomainCounters {
        self.stats
            .get(domain.0 as usize)
            .map(|s| DomainCounters {
                accesses: s.drained.accesses + s.interval.accesses,
                misses: s.drained.misses + s.interval.misses,
            })
            .unwrap_or_default()
    }

    /// Number of valid lines currently owned by `domain` — used by tests
    /// and by the cleansing attacker's probe validation.
    pub fn occupancy(&self, domain: DomainId) -> usize {
        self.ts
            .iter()
            .zip(&self.doms)
            .filter(|&(&t, &o)| t != 0 && o == domain.0)
            .count()
    }

    /// Number of valid lines owned by `domain` in one set.
    pub fn set_occupancy(&self, domain: DomainId, set: usize) -> usize {
        let base = set * self.geometry.ways;
        let end = base + self.geometry.ways;
        self.ts[base..end]
            .iter()
            .zip(&self.doms[base..end])
            .filter(|&(&t, &o)| t != 0 && o == domain.0)
            .count()
    }

    /// Invalidates every line (used between experiment stages in tests).
    pub fn flush(&mut self) {
        self.ts.fill(0);
        self.shadow.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        Llc::new(CacheGeometry { sets: 4, ways: 2 })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        let d = c.register_domain();
        assert!(c.access(d, 0).is_miss());
        assert_eq!(c.access(d, 0), CacheOutcome::Hit);
        let counters = c.drain_counters(d);
        assert_eq!(counters.accesses, 2);
        assert_eq!(counters.misses, 1);
    }

    #[test]
    fn drain_resets_interval_counters_but_not_totals() {
        let mut c = small();
        let d = c.register_domain();
        c.access(d, 0);
        c.drain_counters(d);
        assert_eq!(c.drain_counters(d), DomainCounters::default());
        assert_eq!(c.totals(d).accesses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        let d = c.register_domain();
        // Set 0 holds lines {0, 4, 8, ...} (addr % 4 == 0). Ways = 2.
        c.access(d, 0);
        c.access(d, 4);
        c.access(d, 0); // refresh line 0; line 4 is now LRU
        let out = c.access(d, 8); // evicts line 4
        assert!(out.is_miss());
        assert_eq!(c.access(d, 0), CacheOutcome::Hit); // 0 survived
        assert!(c.access(d, 4).is_miss()); // 4 was evicted
    }

    #[test]
    fn domains_conflict_in_sets_but_never_share_lines() {
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        c.access(a, 0);
        // Same line address from another domain is a *different* line.
        assert!(c.access(b, 0).is_miss());
        assert_eq!(c.access(a, 0), CacheOutcome::Hit);
        assert_eq!(c.access(b, 0), CacheOutcome::Hit);
    }

    #[test]
    fn cross_domain_eviction_is_reported() {
        let mut c = small();
        let victim = c.register_domain();
        let attacker = c.register_domain();
        c.access(victim, 0); // set 0
        // Attacker fills set 0 with two of its own lines, evicting victim.
        let o1 = c.access(attacker, 0);
        let o2 = c.access(attacker, 4);
        assert!(o1.is_miss() && o2.is_miss());
        let evictions = [o1, o2]
            .iter()
            .filter_map(|o| match o {
                CacheOutcome::Miss { evicted } => *evicted,
                _ => None,
            })
            .collect::<Vec<_>>();
        assert!(evictions.contains(&victim));
        // Victim now misses again: the cleansing-attack effect.
        assert!(c.access(victim, 0).is_miss());
    }

    #[test]
    fn occupancy_tracks_ownership() {
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        for addr in 0..4u64 {
            c.access(a, addr);
        }
        assert_eq!(c.occupancy(a), 4);
        assert_eq!(c.occupancy(b), 0);
        assert_eq!(c.set_occupancy(a, 0), 1);
        c.flush();
        assert_eq!(c.occupancy(a), 0);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = Llc::new(CacheGeometry { sets: 64, ways: 8 });
        let d = c.register_domain();
        let ws: Vec<u64> = (0..256).collect(); // 256 lines « 512 capacity
        for &a in &ws {
            c.access(d, a);
        }
        c.drain_counters(d);
        for &a in &ws {
            assert_eq!(c.access(d, a), CacheOutcome::Hit);
        }
        assert_eq!(c.drain_counters(d).misses, 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Llc::new(CacheGeometry { sets: 64, ways: 8 });
        let d = c.register_domain();
        // Streaming over 2× capacity with LRU: every access misses.
        for round in 0..2 {
            for a in 0..1024u64 {
                let out = c.access(d, a);
                if round == 1 {
                    assert!(out.is_miss());
                }
            }
        }
    }

    #[test]
    fn presence_directory_never_changes_outcomes() {
        // Alternate domains and addresses within one set; directory
        // entries must track fills, evictions and flushes exactly, so
        // results match plain LRU semantics.
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        assert!(c.access(a, 0).is_miss());
        assert_eq!(c.access(a, 0), CacheOutcome::Hit); // fast path
        assert!(c.access(b, 0).is_miss()); // same set, different domain
        assert_eq!(c.access(b, 0), CacheOutcome::Hit);
        assert_eq!(c.access(a, 0), CacheOutcome::Hit); // both resident
        c.flush();
        assert!(c.access(a, 0).is_miss()); // directory cleared by flush
    }

    #[test]
    fn directory_entry_cleared_on_eviction() {
        // Ways = 2: two foreign fills evict a's line; a stale directory
        // entry would turn the subsequent access into a phantom hit.
        let mut c = small();
        let a = c.register_domain();
        let b = c.register_domain();
        c.access(a, 0);
        c.access(b, 0);
        c.access(b, 4); // set 0 now holds only b's lines
        assert!(c.access(a, 0).is_miss(), "evicted line must miss");
        assert_eq!(c.occupancy(b), 1, "a's fill evicted one of b's lines");
    }

    #[test]
    fn addresses_beyond_directory_limit_use_scan_path() {
        let mut c = small();
        let d = c.register_domain();
        let jumbo = DIRECTORY_LIMIT + 4; // same set as line 0 (mod 4)
        assert!(c.access(d, jumbo).is_miss());
        assert_eq!(c.access(d, jumbo), CacheOutcome::Hit);
        // Jumbo and small addresses share sets and evict each other.
        assert!(c.access(d, jumbo + 4).is_miss());
        assert!(c.access(d, jumbo + 8).is_miss()); // evicts `jumbo`
        assert!(c.access(d, jumbo).is_miss());
        assert_eq!(c.occupancy(d), 2);
    }

    #[test]
    fn timestamp_rebase_preserves_lru_order() {
        let mut c = small(); // 4 sets × 2 ways
        let d = c.register_domain();
        c.access(d, 0);
        c.access(d, 4); // set 0 full; line 0 is LRU
        // Park the clock just below the u32 boundary, then refresh line
        // 0 so line 4 becomes LRU with a *tiny* stamp while line 0 holds
        // a near-max one — the worst case for an order-preserving rebase.
        c.set_clock_for_test(u32::MAX as u64 - 2);
        assert_eq!(c.access(d, 0), CacheOutcome::Hit);
        // This access crosses the boundary and triggers the rebase.
        assert!(c.access(d, 8).is_miss()); // must evict LRU line 4
        assert_eq!(c.access(d, 0), CacheOutcome::Hit, "MRU line survived");
        assert!(c.access(d, 4).is_miss(), "LRU line was the victim");
        // Clock restarted from the compacted rank count, far below the
        // boundary again.
        assert!(c.clock < 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        Llc::new(CacheGeometry { sets: 3, ways: 2 });
    }

    #[test]
    fn default_geometry_matches_paper_ways() {
        // The paper's E5-2660 LLC is 20-way set-associative.
        assert_eq!(CacheGeometry::default().ways, 20);
        assert!(CacheGeometry::default().sets.is_power_of_two());
    }
}
