//! Seeded fuzz-style property tests for the resynchronising JSONL
//! decoder (`metrics::jsonl::Decoder`).
//!
//! Std-only and fully deterministic: all "arbitrary" input derives from
//! `memdos_stats::rng` seeds, so a failure reproduces from its seed
//! alone (no proptest dependency, no shrink files). The properties:
//!
//! * decoding arbitrary byte soup never panics, at any chunking;
//! * corrupting arbitrary in-line bytes never costs an *intact* line —
//!   the decoder always resynchronises to the next valid record;
//! * the frame stream is independent of how the bytes were chunked;
//! * the per-line byte cap bounds buffering without losing the records
//!   that follow an oversized line.

use memdos_metrics::jsonl::{Decoder, Frame, JsonObject};
use memdos_stats::rng::{derive_seed, Rng};

/// Builds a clean JSONL stream of `n` records and returns (bytes, the
/// expected access values in order).
fn clean_stream(rng: &mut Rng, n: u64) -> (Vec<u8>, Vec<f64>) {
    let mut bytes = Vec::new();
    let mut values = Vec::new();
    for i in 0..n {
        let access = (rng.next_below(1_000_000) + i) as f64;
        bytes.extend_from_slice(
            format!(r#"{{"tenant":"vm-{}","access":{access},"miss":7}}"#, i % 5).as_bytes(),
        );
        bytes.push(b'\n');
        values.push(access);
    }
    (bytes, values)
}

/// Feeds `bytes` to a decoder in seeded random chunks and returns every
/// frame.
fn decode_chunked(rng: &mut Rng, bytes: &[u8]) -> Vec<Frame> {
    let mut dec = Decoder::new();
    let mut frames = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        let take = (1 + rng.next_below(37) as usize).min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        dec.push_bytes(chunk);
        frames.extend(dec.drain());
        rest = tail;
    }
    frames.extend(dec.finish());
    frames
}

#[test]
fn arbitrary_byte_soup_never_panics() {
    for case in 0..200u64 {
        let mut rng = Rng::new(derive_seed(0xF022, case));
        let len = rng.next_below(2_048) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        let frames = decode_chunked(&mut rng, &bytes);
        for frame in &frames {
            match frame {
                Frame::Object(obj) => {
                    // Whatever was recovered must re-serialize as an object.
                    assert!(obj.to_line().starts_with('{'), "case {case}");
                }
                Frame::Skipped { bytes, reason } => {
                    assert!(*bytes > 0, "case {case}: empty skip span");
                    assert!(!reason.is_empty(), "case {case}: silent skip");
                }
            }
        }
    }
}

#[test]
fn corruption_never_costs_an_intact_line() {
    for case in 0..100u64 {
        let mut rng = Rng::new(derive_seed(0xBAD5, case));
        let n = 8 + rng.next_below(24);
        let (mut bytes, values) = clean_stream(&mut rng, n);
        // Overwrite up to 12 in-line bytes (newlines stay, so untouched
        // lines keep their framing), possibly none.
        let hits = rng.next_below(13);
        let mut dirty_lines = std::collections::BTreeSet::new();
        for _ in 0..hits {
            let pos = rng.next_below(bytes.len() as u64) as usize;
            if bytes.get(pos).copied() == Some(b'\n') {
                continue;
            }
            let mut junk = rng.next_below(256) as u8;
            if junk == b'\n' {
                junk = b'#';
            }
            let line_no = bytes
                .iter()
                .take(pos)
                .filter(|b| **b == b'\n')
                .count();
            dirty_lines.insert(line_no);
            if let Some(b) = bytes.get_mut(pos) {
                *b = junk;
            }
        }
        let frames = decode_chunked(&mut rng, &bytes);
        let decoded: Vec<f64> = frames
            .iter()
            .filter_map(|f| match f {
                Frame::Object(obj) => obj.get_f64("access"),
                Frame::Skipped { .. } => None,
            })
            .collect();
        // Every intact line's record must come back, in order: the
        // decoder resynchronised past every corrupted span.
        let expected: Vec<f64> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| !dirty_lines.contains(i))
            .map(|(_, v)| *v)
            .collect();
        let mut cursor = decoded.iter();
        for want in &expected {
            assert!(
                cursor.any(|got| got == want),
                "case {case}: record {want} from an intact line was lost \
                 (dirty lines {dirty_lines:?}, decoded {decoded:?})"
            );
        }
    }
}

#[test]
fn frames_are_independent_of_chunking() {
    for case in 0..50u64 {
        let mut rng = Rng::new(derive_seed(0xC40C, case));
        let (mut bytes, _) = clean_stream(&mut rng, 16);
        // Sprinkle corruption so the resync paths run too.
        for _ in 0..rng.next_below(20) {
            let pos = rng.next_below(bytes.len() as u64) as usize;
            if let Some(b) = bytes.get_mut(pos) {
                *b = rng.next_below(256) as u8;
            }
        }
        let mut whole = Decoder::new();
        whole.push_bytes(&bytes);
        let mut reference = whole.drain();
        reference.extend(whole.finish());
        let mut one = Decoder::new();
        for b in &bytes {
            one.push_bytes(std::slice::from_ref(b));
        }
        let mut byte_at_a_time = one.drain();
        byte_at_a_time.extend(one.finish());
        assert_eq!(reference, byte_at_a_time, "case {case}: chunking changed the frames");
        let random_chunks = decode_chunked(&mut rng, &bytes);
        assert_eq!(reference, random_chunks, "case {case}: chunking changed the frames");
    }
}

#[test]
fn oversized_lines_are_bounded_and_do_not_eat_successors() {
    for case in 0..20u64 {
        let mut rng = Rng::new(derive_seed(0x512E, case));
        let cap = 64;
        let mut bytes = Vec::new();
        // A line far beyond the cap, without a single newline.
        let oversized = cap * (2 + rng.next_below(8) as usize);
        for _ in 0..oversized {
            let mut b = rng.next_below(256) as u8;
            if b == b'\n' {
                b = b'x';
            }
            bytes.push(b);
        }
        bytes.push(b'\n');
        bytes.extend_from_slice(br#"{"tenant":"vm-9","access":42,"miss":7}"#);
        bytes.push(b'\n');
        let mut dec = Decoder::with_max_line(cap);
        dec.push_bytes(&bytes);
        let frames = dec.finish();
        assert!(
            frames.iter().any(|f| matches!(
                f,
                Frame::Skipped { reason, .. } if reason.contains("byte cap")
            )),
            "case {case}: oversized line not reported"
        );
        let survivor = frames.iter().any(|f| match f {
            Frame::Object(obj) => obj.get_f64("access") == Some(42.0),
            Frame::Skipped { .. } => false,
        });
        assert!(survivor, "case {case}: record after the oversized line was lost");
    }
}

#[test]
fn clean_streams_roundtrip_exactly() {
    for case in 0..30u64 {
        let mut rng = Rng::new(derive_seed(0xC1EA, case));
        let n = 1 + rng.next_below(40);
        let (bytes, values) = clean_stream(&mut rng, n);
        let frames = decode_chunked(&mut rng, &bytes);
        assert_eq!(frames.len() as u64, n, "case {case}");
        for (frame, want) in frames.iter().zip(&values) {
            match frame {
                Frame::Object(obj) => {
                    assert_eq!(obj.get_f64("access"), Some(*want), "case {case}")
                }
                Frame::Skipped { reason, .. } => {
                    unreachable!("case {case}: clean line skipped: {reason}")
                }
            }
        }
        // And each line text parses identically through the one-shot
        // object parser.
        let text = String::from_utf8(bytes).expect("clean stream is UTF-8");
        for line in text.lines() {
            assert!(JsonObject::parse(line).is_ok(), "case {case}");
        }
    }
}
