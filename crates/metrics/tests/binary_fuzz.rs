//! Seeded fuzz-style property tests for the resynchronising binary
//! decoder (`metrics::binary::BinDecoder`), mirroring `jsonl_fuzz.rs`.
//!
//! Std-only and fully deterministic: all "arbitrary" input derives from
//! `memdos_stats::rng` seeds, so a failure reproduces from its seed
//! alone. The properties:
//!
//! * decoding arbitrary byte soup never panics, at any chunking;
//! * corrupting arbitrary frame bytes never costs an *intact* frame —
//!   the decoder always resynchronises to the next valid marker;
//! * fusing two frames by deleting a byte span loses at most the frames
//!   the span touched;
//! * the frame stream is independent of how the bytes were chunked;
//! * truncation at any offset yields exactly the fully-delivered frames
//!   plus one trailing skipped span.

use memdos_metrics::binary::{BinDecoder, BinFrame, Encoder, MAGIC};
use memdos_stats::rng::{derive_seed, Rng};

/// Builds a clean binary stream of `n` sample frames (tenants cycling
/// vm-0..vm-4) and returns the bytes *without* the preamble, the access
/// value of each sample in order, and each frame's byte range.
fn clean_stream(rng: &mut Rng, n: u64) -> (Vec<u8>, Vec<f64>, Vec<(usize, usize)>) {
    let mut enc = Encoder::new();
    let mut bytes = Vec::new();
    let mut values = Vec::new();
    let mut ranges = Vec::new();
    for i in 0..n {
        let access = (rng.next_below(1_000_000) + i) as f64;
        let start = bytes.len();
        enc.sample(&format!("vm-{}", i % 5), access, 7.0, &mut bytes)
            .expect("encode");
        ranges.push((start, bytes.len()));
        values.push(access);
    }
    let body = bytes.split_off(MAGIC.len());
    let ranges = ranges
        .iter()
        .map(|&(s, e)| (s.saturating_sub(MAGIC.len()), e - MAGIC.len()))
        .collect();
    (body, values, ranges)
}

/// Feeds `bytes` to a decoder in seeded random chunks and returns every
/// frame.
fn decode_chunked(rng: &mut Rng, bytes: &[u8]) -> Vec<BinFrame> {
    let mut dec = BinDecoder::new();
    let mut frames = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        let take = (1 + rng.next_below(37) as usize).min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        dec.push_bytes(chunk);
        frames.extend(dec.drain());
        rest = tail;
    }
    frames.extend(dec.finish());
    frames
}

/// The access values of every decoded sample frame, in order.
fn sample_values(frames: &[BinFrame]) -> Vec<f64> {
    frames
        .iter()
        .filter_map(|f| match f {
            BinFrame::Sample { access, .. } => Some(*access),
            _ => None,
        })
        .collect()
}

#[test]
fn arbitrary_byte_soup_never_panics() {
    for case in 0..200u64 {
        let mut rng = Rng::new(derive_seed(0xB177, case));
        let len = rng.next_below(2_048) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        let frames = decode_chunked(&mut rng, &bytes);
        let mut covered = 0usize;
        for frame in &frames {
            if let BinFrame::Skipped { bytes, reason } = frame {
                assert!(*bytes > 0, "case {case}: empty skip span");
                assert!(!reason.is_empty(), "case {case}: silent skip");
                covered += bytes;
            }
        }
        assert!(covered <= len, "case {case}: skip spans exceed the input");
    }
}

#[test]
fn corruption_never_costs_an_intact_frame() {
    for case in 0..100u64 {
        let mut rng = Rng::new(derive_seed(0xBADB, case));
        let n = 8 + rng.next_below(24);
        let (mut bytes, values, ranges) = clean_stream(&mut rng, n);
        let hits = rng.next_below(13);
        let mut dirty = std::collections::BTreeSet::new();
        for _ in 0..hits {
            let pos = rng.next_below(bytes.len() as u64) as usize;
            let junk = rng.next_below(256) as u8;
            for (i, &(s, e)) in ranges.iter().enumerate() {
                if pos >= s && pos < e {
                    dirty.insert(i);
                }
            }
            if let Some(b) = bytes.get_mut(pos) {
                *b = junk;
            }
        }
        let frames = decode_chunked(&mut rng, &bytes);
        let decoded = sample_values(&frames);
        // Every untouched frame's sample must come back, in order.
        let expected: Vec<f64> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| !dirty.contains(i))
            .map(|(_, v)| *v)
            .collect();
        let mut cursor = decoded.iter();
        for want in &expected {
            assert!(
                cursor.any(|got| got == want),
                "case {case}: sample {want} from an intact frame was lost \
                 (dirty frames {dirty:?}, decoded {decoded:?})"
            );
        }
    }
}

#[test]
fn fused_frames_lose_only_the_touched_span() {
    for case in 0..100u64 {
        let mut rng = Rng::new(derive_seed(0xF05E, case));
        let n = 8 + rng.next_below(24);
        let (mut bytes, values, ranges) = clean_stream(&mut rng, n);
        // Delete a byte span, fusing the frame it starts in with the
        // frame it ends in (the chaos harness's truncation splice).
        let start = rng.next_below(bytes.len() as u64 - 1) as usize;
        let len = (1 + rng.next_below(40) as usize).min(bytes.len() - start);
        let mut dirty = std::collections::BTreeSet::new();
        for (i, &(s, e)) in ranges.iter().enumerate() {
            if start < e && start + len > s {
                dirty.insert(i);
            }
        }
        bytes.drain(start..start + len);
        let frames = decode_chunked(&mut rng, &bytes);
        let decoded = sample_values(&frames);
        let expected: Vec<f64> = values
            .iter()
            .enumerate()
            .filter(|(i, _)| !dirty.contains(i))
            .map(|(_, v)| *v)
            .collect();
        let mut cursor = decoded.iter();
        for want in &expected {
            assert!(
                cursor.any(|got| got == want),
                "case {case}: sample {want} outside the deleted span was lost \
                 (span {start}+{len}, dirty {dirty:?}, decoded {decoded:?})"
            );
        }
    }
}

#[test]
fn frames_are_independent_of_chunking() {
    for case in 0..50u64 {
        let mut rng = Rng::new(derive_seed(0xCB0C, case));
        let (mut bytes, _, _) = clean_stream(&mut rng, 16);
        // Sprinkle corruption so the resync paths run too.
        for _ in 0..rng.next_below(20) {
            let pos = rng.next_below(bytes.len() as u64) as usize;
            if let Some(b) = bytes.get_mut(pos) {
                *b = rng.next_below(256) as u8;
            }
        }
        let mut whole = BinDecoder::new();
        whole.push_bytes(&bytes);
        let mut reference = whole.drain();
        reference.extend(whole.finish());
        let mut one = BinDecoder::new();
        for b in &bytes {
            one.push_bytes(std::slice::from_ref(b));
        }
        let mut byte_at_a_time = one.drain();
        byte_at_a_time.extend(one.finish());
        assert_eq!(reference, byte_at_a_time, "case {case}: chunking changed the frames");
        let random_chunks = decode_chunked(&mut rng, &bytes);
        assert_eq!(reference, random_chunks, "case {case}: chunking changed the frames");
    }
}

#[test]
fn truncation_yields_delivered_frames_plus_one_span() {
    for case in 0..100u64 {
        let mut rng = Rng::new(derive_seed(0x7B42, case));
        let n = 4 + rng.next_below(20);
        let (bytes, values, ranges) = clean_stream(&mut rng, n);
        let cut = rng.next_below(bytes.len() as u64 + 1) as usize;
        let mut dec = BinDecoder::new();
        dec.push_bytes(&bytes[..cut]);
        let frames = dec.finish();
        let decoded = sample_values(&frames);
        let expected: Vec<f64> = values
            .iter()
            .zip(&ranges)
            .filter(|(_, &(_, e))| e <= cut)
            .map(|(v, _)| *v)
            .collect();
        assert_eq!(decoded, expected, "case {case}: cut at {cut}");
        let on_boundary = cut == 0 || ranges.iter().any(|&(_, e)| e == cut);
        if on_boundary {
            assert_eq!(dec.resynced(), 0, "case {case}: spurious span at a frame boundary");
        } else {
            assert_eq!(dec.resynced(), 1, "case {case}: mid-frame cut must report one span");
            assert!(
                frames.iter().any(|f| matches!(
                    f,
                    BinFrame::Skipped { reason, .. }
                        if reason.contains("truncated")
                )),
                "case {case}: truncation span missing"
            );
        }
    }
}

#[test]
fn clean_streams_roundtrip_exactly() {
    for case in 0..30u64 {
        let mut rng = Rng::new(derive_seed(0xC1EB, case));
        let n = 1 + rng.next_below(40);
        let (bytes, values, _) = clean_stream(&mut rng, n);
        let frames = decode_chunked(&mut rng, &bytes);
        assert!(
            !frames.iter().any(|f| matches!(f, BinFrame::Skipped { .. })),
            "case {case}: clean stream skipped"
        );
        assert_eq!(sample_values(&frames), values, "case {case}");
        let defines = frames
            .iter()
            .filter(|f| matches!(f, BinFrame::Define { .. }))
            .count();
        assert_eq!(defines, 5.min(n as usize), "case {case}: one define per tenant");
    }
}
