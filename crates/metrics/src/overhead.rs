//! Performance overhead (§5.2, Fig. 12).
//!
//! "We measured the performance overhead of SDS on the applications
//! running on the VMs. In this experiment, we do not launch any attacks.
//! [The figure] shows the normalized execution times (normalized to the
//! execution time without running any detection schemes) of different
//! applications running on the VM when the hypervisor employs different
//! detection schemes."
//!
//! The measured VM is *co-located* with the protected VM. SDS costs every
//! VM its counter-sampling/analysis cycle tax. KStest costs the same kind
//! of tax **plus** the periodic throttling: during every reference
//! collection (`W_R` out of every `L_R`) all co-located VMs are paused —
//! alone `W_R / L_R` ≈ 3.3 % at the default parameters — and each paused
//! VM additionally pays a cache re-warm penalty after resuming, which is
//! how the baseline reaches the paper's 3–8 % band.
//!
//! Normalized execution time is measured as a *throughput ratio*: the
//! work the measured application completes in a fixed window without any
//! scheme, divided by the work it completes in the same window under the
//! scheme. Over a multi-minute window this is equivalent to the paper's
//! ratio of execution times for a fixed job and far less sensitive to
//! the chaotic tail of a stopping-time measurement.

use memdos_core::detector::{Detector, Observation, ThrottleRequest};
use memdos_core::kstest::KsTestDetector;
use memdos_sim::server::{Server, ServerConfig};
use memdos_sim::VmId;
use memdos_workloads::catalog::Application;

use crate::experiment::{ExperimentConfig, Scheme};

/// Configuration of one overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadConfig {
    /// The application whose execution time is measured (runs on a
    /// co-located VM).
    pub app: Application,
    /// Application on the protected VM. `None` (the default) runs a
    /// light utility workload there, so the measurement isolates the
    /// *detection scheme's* cost from application-vs-application cache
    /// contention, which exists with or without detection.
    pub protected_app: Option<Application>,
    /// Ticks of the measurement window.
    pub measure_ticks: u64,
    /// Everything else (server, taxes, utility count, seed).
    pub base: ExperimentConfig,
}

impl OverheadConfig {
    /// Creates a measurement for `app` with defaults: utility workload on
    /// the protected VM, 120 s window.
    pub fn new(app: Application) -> Self {
        OverheadConfig {
            app,
            protected_app: None,
            measure_ticks: 12_000,
            base: ExperimentConfig::default(),
        }
    }

    fn build(&self, run: u64) -> (Server, VmId, VmId) {
        let server_cfg = ServerConfig {
            seed: self.base.run_seed(run).wrapping_add(0x0EAD),
            ..self.base.server
        };
        let mut server = Server::new(server_cfg);
        let llc = server.config().geometry.lines() as u64;
        let measured = server.add_vm(self.app.name(), self.app.build(llc));
        let protected = match self.protected_app {
            Some(app) => server.add_vm(app.name(), app.build(llc)),
            None => server.add_vm(
                "protected-util",
                Box::new(memdos_workloads::apps::utility::program(9)),
            ),
        };
        for i in 0..self.base.utility_vms.saturating_sub(1) {
            server.add_vm(
                format!("util-{i}"),
                Box::new(memdos_workloads::apps::utility::program(i as u64)),
            );
        }
        (server, measured, protected)
    }

    /// Work the measured VM completes in the window under `scheme`
    /// (`None` = no detection).
    pub fn work_in_window(&self, scheme: Option<Scheme>, run: u64) -> u64 {
        let (mut server, measured, protected) = self.build(run);
        let mut detector: Option<KsTestDetector> = None;
        match scheme {
            None => {}
            Some(s) if s.is_passive() => {
                server.set_monitor_tax(self.base.sds_tax_cycles);
            }
            Some(_) => {
                server.set_monitor_tax(self.base.ks_tax_cycles);
                detector =
                    // lint:allow(panic) -- ks_params comes from the validated
                    // base ExperimentConfig; invalid ones are a bug.
                    Some(KsTestDetector::new(self.base.ks_params).expect("valid params"));
            }
        }
        for _ in 0..self.measure_ticks {
            let report = server.tick();
            if let Some(det) = detector.as_mut() {
                let obs =
                    // lint:allow(panic) -- `protected` was registered by the
                    // build step above; a missing sample is a simulator bug.
                    Observation::from(report.sample(protected).expect("protected sample"));
                let step = det.on_observation(obs);
                match step.throttle {
                    Some(ThrottleRequest::PauseOthers) => server.pause_all_except(protected),
                    Some(ThrottleRequest::ResumeAll) => server.resume_all(),
                    None => {}
                }
            }
        }
        server.vm_work(measured)
    }

    /// Normalized execution time of the measured application under
    /// `scheme`: baseline work over scheme work in the same window.
    /// 1.0 = no overhead; 1.05 = 5 % slower.
    pub fn normalized_execution_time(&self, scheme: Scheme, run: u64) -> f64 {
        let baseline = self.work_in_window(None, run) as f64;
        let with_scheme = self.work_in_window(Some(scheme), run) as f64;
        if with_scheme <= 0.0 {
            return f64::INFINITY;
        }
        baseline / with_scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::StageConfig;

    fn quick_cfg() -> OverheadConfig {
        let mut c = OverheadConfig::new(Application::KMeans);
        c.measure_ticks = 6_000; // two full L_R cycles
        c.base.stages = StageConfig::quick();
        c.base.utility_vms = 2;
        c
    }

    #[test]
    fn baseline_is_reproducible() {
        let c = quick_cfg();
        assert_eq!(c.work_in_window(None, 1), c.work_in_window(None, 1));
        assert!(c.work_in_window(None, 1) > 0);
    }

    #[test]
    fn sds_overhead_is_small_but_positive() {
        let c = quick_cfg();
        for run in [3, 4] {
            let n = c.normalized_execution_time(Scheme::Sds, run);
            assert!((1.0..1.06).contains(&n), "run {run}: SDS normalized time {n}");
        }
    }

    #[test]
    fn kstest_overhead_exceeds_sds() {
        let c = quick_cfg();
        let sds = c.normalized_execution_time(Scheme::Sds, 4);
        let ks = c.normalized_execution_time(Scheme::KsTest, 4);
        assert!(
            ks > sds + 0.01,
            "KStest ({ks}) should cost more than SDS ({sds})"
        );
        // Throttling alone is W_R/L_R ≈ 3.3 %.
        assert!(ks > 1.03, "KStest normalized time {ks}");
        assert!(ks < 1.20, "KStest normalized time implausible: {ks}");
    }

    #[test]
    fn heavier_protected_app_is_supported() {
        let mut c = quick_cfg();
        c.protected_app = Some(Application::Bayes);
        c.measure_ticks = 2_000;
        assert!(c.work_in_window(None, 7) > 0);
    }
}
