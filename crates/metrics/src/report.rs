//! Report formatting: the paper's median/p10/p90 presentation.

use memdos_stats::series::RunSummary;

/// Summarizes per-run values the way every §5 figure does: "bars give
/// median values and the error bars give the 10th and 90th percentile
/// values". Empty inputs yield `None`.
pub fn summarize(runs: &[f64]) -> Option<RunSummary> {
    RunSummary::from_runs(runs).ok()
}

/// Summarizes optional per-run values (e.g. detection delays, where a
/// run may never detect), treating `None` as `censor_value` — the
/// conservative convention for undetected runs is the full stage length.
pub fn summarize_censored(runs: &[Option<f64>], censor_value: f64) -> Option<RunSummary> {
    let values: Vec<f64> = runs.iter().map(|v| v.unwrap_or(censor_value)).collect();
    summarize(&values)
}

/// A plain-text column-aligned table, used by every bench target to
/// print its figure/table reproduction.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Convenience: appends a row of string slices.
    pub fn push_strs(&mut self, row: &[&str]) {
        self.push(row.iter().map(|s| s.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (w, h) in widths.iter_mut().zip(&self.header) {
            *w = (*w).max(h.chars().count());
        }
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut std::fmt::Formatter<'_>, row: &[String]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a [`RunSummary`] as `median [p10, p90]` with the given number
/// of decimals.
pub fn fmt_summary(s: &RunSummary, decimals: usize) -> String {
    format!(
        "{:.d$} [{:.d$}, {:.d$}]",
        s.median,
        s.p10,
        s.p90,
        d = decimals
    )
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.median, 2.0);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn censoring_fills_missing() {
        let s = summarize_censored(&[Some(1.0), None, Some(3.0)], 100.0).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["app", "value"]);
        t.push_strs(&["kmeans", "1.0"]);
        t.push_strs(&["facenet", "0.5"]);
        let out = t.to_string();
        assert!(out.contains("== Demo =="));
        assert!(out.contains("kmeans"));
        // Columns aligned: "facenet" is the widest first-column cell.
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new("Ragged", &["a"]);
        t.push(vec!["x".into(), "extra".into()]);
        let out = t.to_string();
        assert!(out.contains("extra"));
    }

    #[test]
    fn formatting_helpers() {
        let s = RunSummary { median: 0.95, p10: 0.9, p90: 1.0 };
        assert_eq!(fmt_summary(&s, 2), "0.95 [0.90, 1.00]");
        assert_eq!(fmt_pct(0.333), "33.3%");
    }
}
