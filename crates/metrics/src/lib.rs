//! # memdos-metrics
//!
//! The experiment protocol and evaluation metrics of the paper's §5:
//!
//! * [`experiment`] — the three-stage protocol (§5.1): Stage 1 profiles
//!   the application without attack; Stage 2 runs it benign; Stage 3
//!   launches the memory-DoS attack. One protected victim VM, one attack
//!   VM and seven benign utility VMs share the simulated server, exactly
//!   like the paper's testbed. Passive schemes (SDS, SDS/B, SDS/P) are
//!   evaluated on a single server execution; the KStest baseline gets its
//!   own execution because it actively throttles the server.
//! * [`accuracy`] — recall and specificity over fixed decision intervals
//!   (Figs. 9–10).
//! * [`delay`] — detection delay: attack launch → first alarm activation
//!   (Fig. 11).
//! * [`overhead`] — normalized execution time of an application
//!   co-located with a protected VM, with and without a detection scheme
//!   (Fig. 12): SDS costs only its counter-sampling tax, KStest
//!   additionally pauses co-located VMs during every reference
//!   collection.
//! * [`report`] — median/p10/p90 summaries over runs in the paper's
//!   reporting format.
//! * [`jsonl`] — the hand-rolled line-delimited JSON codec behind the
//!   engine's streaming wire protocol (std-only, flat objects).
//! * [`binary`] — the fixed-width little-endian binary wire format
//!   negotiated on the same protocol (magic preamble, frame checksums,
//!   tenant-id dictionary, resynchronising streaming decoder).
//! * [`robustness`] — failure injection on the measurement channel
//!   (dropout / noise / freezes), an extension beyond the paper.
//!
//! ## Example
//!
//! ```rust,no_run
//! use memdos_attacks::AttackKind;
//! use memdos_metrics::experiment::{ExperimentConfig, Scheme, StageConfig};
//! use memdos_workloads::catalog::Application;
//!
//! let cfg = ExperimentConfig {
//!     app: Application::KMeans,
//!     attack: AttackKind::BusLocking,
//!     stages: StageConfig::quick(),
//!     ..ExperimentConfig::default()
//! };
//! let outcome = cfg.run_scheme(Scheme::Sds, 1).unwrap();
//! let m = outcome.metrics(&cfg.stages);
//! println!("recall={} specificity={}", m.recall, m.specificity);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod binary;
pub mod delay;
pub mod experiment;
pub mod jsonl;
pub mod overhead;
pub mod report;
pub mod robustness;
