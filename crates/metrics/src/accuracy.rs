//! Recall and specificity (§5.2).
//!
//! * *Recall* = TP / (TP + FN) — "the ability to detect an attack when it
//!   is present".
//! * *Specificity* = TN / (TN + FP) — "the ability to correctly infer no
//!   attack when the attack is absent".
//!
//! Both are computed over fixed-length *decision intervals* of the
//! monitored timeline: an interval is *positive* when the detector's
//! alarm state was active at any tick inside it. Benign-stage positives
//! are false positives; attack-stage positives are true positives.
//! Recall excludes a *grace period* at the head of the attack stage so
//! that the (separately reported) detection delay is not double-counted
//! as missed intervals — without it every scheme's recall would be
//! bounded by the same delay it is already charged for in Fig. 11.

/// Collapses a per-tick alarm timeline into per-interval positives.
/// A trailing partial interval counts as a full interval.
pub fn interval_positives(alarm: &[bool], interval_ticks: u64) -> Vec<bool> {
    assert!(interval_ticks > 0, "decision interval must be positive");
    alarm
        .chunks(interval_ticks as usize)
        .map(|w| w.iter().any(|&a| a))
        .collect()
}

/// Specificity over a benign-stage alarm timeline: the fraction of
/// decision intervals with no alarm. Returns 1.0 for an empty stage.
pub fn specificity(alarm_benign: &[bool], interval_ticks: u64) -> f64 {
    let intervals = interval_positives(alarm_benign, interval_ticks);
    if intervals.is_empty() {
        return 1.0;
    }
    let fp = intervals.iter().filter(|&&p| p).count();
    (intervals.len() - fp) as f64 / intervals.len() as f64
}

/// Recall over an attack-stage alarm timeline, skipping the first
/// `grace_ticks`: the fraction of remaining decision intervals with an
/// alarm. Returns 0.0 when the grace consumes the whole stage and no
/// alarm ever fired, 1.0 when it consumed the stage but an alarm was
/// active somewhere (degenerate short stages).
pub fn recall(alarm_attack: &[bool], interval_ticks: u64, grace_ticks: u64) -> f64 {
    let start = (grace_ticks as usize).min(alarm_attack.len());
    let tail = &alarm_attack[start..];
    if tail.is_empty() {
        return if alarm_attack.iter().any(|&a| a) { 1.0 } else { 0.0 };
    }
    let intervals = interval_positives(tail, interval_ticks);
    let tp = intervals.iter().filter(|&&p| p).count();
    tp as f64 / intervals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_collapse_any_alarm() {
        let alarm = [false, false, true, false, false, false, false, true];
        assert_eq!(interval_positives(&alarm, 4), vec![true, true]);
        assert_eq!(interval_positives(&alarm, 8), vec![true]);
    }

    #[test]
    fn trailing_partial_interval_counts() {
        let alarm = [false, false, false, false, true];
        assert_eq!(interval_positives(&alarm, 4), vec![false, true]);
    }

    #[test]
    fn perfect_specificity_without_alarms() {
        assert_eq!(specificity(&[false; 100], 10), 1.0);
    }

    #[test]
    fn each_alarmed_interval_costs_specificity() {
        let mut alarm = vec![false; 100];
        alarm[5] = true; // first interval
        alarm[95] = true; // last interval
        assert_eq!(specificity(&alarm, 10), 0.8);
    }

    #[test]
    fn empty_stage_is_fully_specific() {
        assert_eq!(specificity(&[], 10), 1.0);
    }

    #[test]
    fn recall_counts_post_grace_intervals() {
        // Alarm activates at tick 30 of a 100-tick stage; grace 20.
        let mut alarm = vec![false; 100];
        for a in alarm.iter_mut().skip(30) {
            *a = true;
        }
        // Post-grace window is ticks 20..100; interval 10 → 8 intervals,
        // the first (20..30) has no alarm.
        assert_eq!(recall(&alarm, 10, 20), 7.0 / 8.0);
        // With grace 30 every remaining interval is alarmed.
        assert_eq!(recall(&alarm, 10, 30), 1.0);
    }

    #[test]
    fn recall_zero_when_never_detected() {
        assert_eq!(recall(&[false; 50], 10, 0), 0.0);
    }

    #[test]
    fn recall_degenerate_grace() {
        assert_eq!(recall(&[false, true], 10, 10), 1.0);
        assert_eq!(recall(&[false, false], 10, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        interval_positives(&[true], 0);
    }
}
