//! Detection delay (§5.2, Fig. 11).
//!
//! "We define the detection delay as the duration between the time when
//! an attack is launched (which is known as we launch the attacks in the
//! experiments) and the time when the attack is detected."

/// Detection delay in ticks: the first tick at or after `attack_start`
/// (an index into `alarm`) at which the alarm state is active, minus
/// `attack_start`. `None` when the attack is never detected.
///
/// An alarm that is (spuriously) already active when the attack launches
/// yields a delay of zero — the operator is already reacting.
pub fn detection_delay_ticks(alarm: &[bool], attack_start: usize) -> Option<u64> {
    alarm
        .iter()
        .enumerate()
        .skip(attack_start)
        .find(|(_, &a)| a)
        .map(|(i, _)| (i - attack_start) as u64)
}

/// Converts a tick delay to seconds given the sampling interval.
pub fn ticks_to_secs(ticks: u64, t_pcm_secs: f64) -> f64 {
    ticks as f64 * t_pcm_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_first_alarm_after_launch() {
        let mut alarm = vec![false; 100];
        alarm[10] = true; // pre-attack false alarm, must be ignored
        alarm[60] = true;
        alarm[61] = true;
        assert_eq!(detection_delay_ticks(&alarm, 50), Some(10));
    }

    #[test]
    fn zero_delay_when_already_active() {
        let mut alarm = vec![false; 10];
        alarm[5] = true;
        assert_eq!(detection_delay_ticks(&alarm, 5), Some(0));
    }

    #[test]
    fn none_when_never_detected() {
        assert_eq!(detection_delay_ticks(&[false; 20], 5), None);
        assert_eq!(detection_delay_ticks(&[], 0), None);
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(ticks_to_secs(1500, 0.01), 15.0);
    }
}
