//! Fixed-width little-endian binary record codec — the raw-speed wire
//! format behind the engine's streaming protocol.
//!
//! JSONL (see [`crate::jsonl`]) stays the interop format; this module is
//! the negotiated fast path. A binary stream opens with the 8-byte
//! [`MAGIC`] preamble (its first byte can never begin a JSONL line, so
//! the receiver sniffs the first bytes and falls back to JSONL when they
//! diverge) and then carries a sequence of frames:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 1    | frame marker, always [`MARKER`] (`0xA5`) |
//! | 1      | 1    | kind: `0` sample, `1` close, `2` define |
//! | 2      | 2    | Fletcher-16 checksum (LE) over the kind byte, bytes 4..24, and any payload |
//! | 4      | 4    | tenant wire id (`u32` LE) |
//! | 8      | 8    | sample: access counter (`f64` bits, LE); define: payload length (`u32` LE) in bytes 8..12, bytes 12..16 zero |
//! | 16     | 8    | sample: miss counter (`f64` bits, LE); close/define: zero |
//!
//! Every frame is [`FRAME_LEN`] (24) bytes; a *define* frame is followed
//! by its UTF-8 tenant-name payload (at most [`MAX_NAME_LEN`] bytes).
//! Tenant names travel once: a define frame binds a dense wire id to a
//! name before its first use, and samples/closes carry only the id.
//!
//! The [`BinDecoder`] mirrors [`crate::jsonl::Decoder`]: feed arbitrary
//! chunks with [`BinDecoder::push_bytes`], drain frames, call
//! [`BinDecoder::finish`] at end of stream. It never panics on any input
//! and always resynchronises: on a bad marker, checksum mismatch,
//! oversized name or invalid UTF-8 it scans forward to the next
//! [`MARKER`] byte and reports the contiguous skipped span as one
//! [`BinFrame::Skipped`] carrying the first failure's reason. The caller
//! strips the [`MAGIC`] preamble before feeding bytes (the engine does
//! this during format negotiation); a preamble mid-stream decodes as a
//! skipped span, which is the intended visibility for a mid-stream
//! reconnect.

use std::collections::BTreeMap;

/// Stream preamble announcing the binary format. The first byte (`0xB1`)
/// is not valid UTF-8 start for `{` or whitespace, so no JSONL stream
/// can begin with it — this is what makes sniff-based negotiation safe.
pub const MAGIC: [u8; 8] = [0xB1, b'M', b'D', b'S', b'B', b'1', 0x0D, 0x0A];

/// Fixed frame length in bytes (define frames append a payload).
pub const FRAME_LEN: usize = 24;

/// First byte of every frame; the resync scan hunts for it.
pub const MARKER: u8 = 0xA5;

/// Maximum tenant-name payload length a define frame may carry.
pub const MAX_NAME_LEN: usize = 4096;

/// Exclusive upper bound on tenant wire ids. Consumers reject define
/// frames at or above this so a corrupt id cannot size a table by 4 GiB.
pub const MAX_WIRE_ID: u32 = 1 << 20;

const KIND_SAMPLE: u8 = 0;
const KIND_CLOSE: u8 = 1;
const KIND_DEFINE: u8 = 2;

/// One decoded frame from a [`BinDecoder`]: a record or a skipped span.
#[derive(Debug, Clone, PartialEq)]
pub enum BinFrame {
    /// One counter sample for the tenant bound to `tenant`.
    Sample {
        /// Tenant wire id (bound by an earlier [`BinFrame::Define`]).
        tenant: u32,
        /// Cache-access counter value.
        access: f64,
        /// Cache-miss counter value.
        miss: f64,
    },
    /// End of a tenant's stream.
    Close {
        /// Tenant wire id.
        tenant: u32,
    },
    /// Binds a dense wire id to a tenant name; sent before first use.
    Define {
        /// Tenant wire id being bound.
        tenant: u32,
        /// UTF-8 tenant name.
        name: String,
    },
    /// Bytes the decoder skipped to resynchronise.
    Skipped {
        /// Number of bytes the span covers.
        bytes: usize,
        /// Why the span was skipped (first failure in the span).
        reason: &'static str,
    },
}

/// Fletcher-16 checksum over the kind byte, the frame body, and any
/// payload.
///
/// Cheap enough for the per-sample hot path, and strong enough to catch
/// the bit-flips and truncation splices the chaos harness injects. The
/// kind byte is folded in because it sits outside the body: without it a
/// single bit flip could silently turn a sample into a checksum-valid
/// define and rebind a wire id. The marker needs no coverage — it is a
/// constant the decoder matches directly.
// hot-path
pub fn checksum(kind: u8, body: &[u8], payload: &[u8]) -> u16 {
    let mut sum1: u32 = u32::from(kind);
    let mut sum2: u32 = sum1;
    for &b in body.iter().chain(payload) {
        sum1 = (sum1 + u32::from(b)) % 255;
        sum2 = (sum2 + sum1) % 255;
    }
    ((sum2 as u16) << 8) | sum1 as u16
}

/// Appends the [`MAGIC`] preamble to `out`.
pub fn write_preamble(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
}

fn write_frame(out: &mut Vec<u8>, kind: u8, tenant: u32, hi: u64, lo: u64, payload: &[u8]) {
    let mut frame = [0u8; FRAME_LEN];
    frame[0] = MARKER;
    frame[1] = kind;
    frame[4..8].copy_from_slice(&tenant.to_le_bytes());
    frame[8..16].copy_from_slice(&hi.to_le_bytes());
    frame[16..24].copy_from_slice(&lo.to_le_bytes());
    let c = checksum(kind, &frame[4..], payload);
    frame[2..4].copy_from_slice(&c.to_le_bytes());
    out.extend_from_slice(&frame);
    out.extend_from_slice(payload);
}

/// Appends one sample frame to `out`.
// hot-path
pub fn write_sample(out: &mut Vec<u8>, tenant: u32, access: f64, miss: f64) {
    write_frame(out, KIND_SAMPLE, tenant, access.to_bits(), miss.to_bits(), &[]);
}

/// Appends one close frame to `out`.
pub fn write_close(out: &mut Vec<u8>, tenant: u32) {
    write_frame(out, KIND_CLOSE, tenant, 0, 0, &[]);
}

/// Errors from the encoding surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Tenant name exceeds [`MAX_NAME_LEN`] bytes.
    NameTooLong {
        /// Actual name length in bytes.
        len: usize,
    },
    /// The dictionary is full: [`MAX_WIRE_ID`] distinct tenants seen.
    TooManyTenants,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::NameTooLong { len } => {
                write!(f, "tenant name of {len} bytes exceeds the {MAX_NAME_LEN}-byte cap")
            }
            EncodeError::TooManyTenants => {
                write!(f, "wire-id dictionary is full ({MAX_WIRE_ID} tenants)")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Appends one define frame (header plus UTF-8 name payload) to `out`.
///
/// # Errors
///
/// [`EncodeError::NameTooLong`] when the name exceeds [`MAX_NAME_LEN`].
pub fn write_define(out: &mut Vec<u8>, tenant: u32, name: &str) -> Result<(), EncodeError> {
    if name.len() > MAX_NAME_LEN {
        return Err(EncodeError::NameTooLong { len: name.len() });
    }
    write_frame(out, KIND_DEFINE, tenant, name.len() as u64, 0, name.as_bytes());
    Ok(())
}

/// Stateful by-name encoder: assigns dense wire ids in first-seen order
/// and emits the [`MAGIC`] preamble plus define frames automatically, so
/// converters and tests can translate name-keyed streams without
/// tracking the dictionary themselves.
#[derive(Debug, Default)]
pub struct Encoder {
    ids: BTreeMap<String, u32>,
    next_id: u32,
    preamble_written: bool,
}

impl Encoder {
    /// A fresh encoder with an empty dictionary.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Number of distinct tenants defined so far.
    pub fn tenants(&self) -> usize {
        self.ids.len()
    }

    /// Appends a sample for `name`, preceded by the preamble (first call)
    /// and a define frame (first use of `name`).
    ///
    /// # Errors
    ///
    /// [`EncodeError`] on an oversized name or a full dictionary.
    pub fn sample(
        &mut self,
        name: &str,
        access: f64,
        miss: f64,
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        let id = self.id_for(name, out)?;
        write_sample(out, id, access, miss);
        Ok(())
    }

    /// Appends a close frame for `name` (defining it first if unseen).
    ///
    /// # Errors
    ///
    /// [`EncodeError`] on an oversized name or a full dictionary.
    pub fn close(&mut self, name: &str, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        let id = self.id_for(name, out)?;
        write_close(out, id);
        Ok(())
    }

    fn id_for(&mut self, name: &str, out: &mut Vec<u8>) -> Result<u32, EncodeError> {
        if !self.preamble_written {
            write_preamble(out);
            self.preamble_written = true;
        }
        if let Some(&id) = self.ids.get(name) {
            return Ok(id);
        }
        let id = self.next_id;
        if id >= MAX_WIRE_ID {
            return Err(EncodeError::TooManyTenants);
        }
        write_define(out, id, name)?;
        self.ids.insert(name.to_owned(), id);
        self.next_id += 1;
        Ok(id)
    }
}

/// An in-progress skipped span: bytes accumulated while hunting for the
/// next decodable frame, tagged with the first failure's reason.
#[derive(Debug)]
struct Skip {
    bytes: usize,
    reason: &'static str,
}

/// What [`BinDecoder::try_frame`] decided about the buffer front.
enum Step {
    /// A complete frame of `usize` bytes decoded.
    Frame(BinFrame, usize),
    /// Skip `usize` bytes for the given reason and retry.
    Skip(usize, &'static str),
    /// Not enough bytes buffered yet.
    Need,
}

/// Incremental byte-stream binary decoder with resynchronisation and
/// bounded buffering — the binary twin of [`crate::jsonl::Decoder`].
///
/// Buffering is bounded by construction: every complete frame is at most
/// `FRAME_LEN + MAX_NAME_LEN` bytes, so the decoder holds less than one
/// frame of unconsumed input between calls.
#[derive(Debug, Default)]
pub struct BinDecoder {
    buf: Vec<u8>,
    pos: usize,
    frames: Vec<BinFrame>,
    decoded: u64,
    resynced: u64,
    skip: Option<Skip>,
}

impl BinDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        BinDecoder::default()
    }

    /// Number of content frames (sample/close/define) decoded so far.
    pub fn frames(&self) -> u64 {
        self.decoded
    }

    /// Number of skipped spans emitted so far (each span is one
    /// contiguous run of undecodable bytes).
    pub fn resynced(&self) -> u64 {
        self.resynced
    }

    /// Feeds one chunk of the stream into the decoder.
    // hot-path
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
        self.decode_available(false);
    }

    /// Takes every frame decoded so far.
    pub fn drain(&mut self) -> Vec<BinFrame> {
        std::mem::take(&mut self.frames)
    }

    /// Moves every frame decoded so far into `out` (cleared first), so a
    /// steady-state caller reuses one allocation across reads.
    // hot-path
    pub fn drain_into(&mut self, out: &mut Vec<BinFrame>) {
        out.clear();
        std::mem::swap(out, &mut self.frames);
    }

    /// Flushes trailing bytes (end of stream) as a truncated-frame span
    /// and takes the remaining frames.
    pub fn finish(&mut self) -> Vec<BinFrame> {
        self.decode_available(true);
        self.flush_skip();
        self.drain()
    }

    /// Decodes every complete frame at the buffer front. With `at_eof`
    /// the remainder can never complete, so partial frames become
    /// skipped spans instead of waiting for more bytes.
    // hot-path
    fn decode_available(&mut self, at_eof: bool) {
        loop {
            match self.try_frame(at_eof) {
                Step::Frame(frame, consumed) => {
                    self.flush_skip();
                    self.pos += consumed;
                    self.decoded += 1;
                    self.frames.push(frame);
                }
                Step::Skip(n, reason) => {
                    self.pos += n;
                    match self.skip.as_mut() {
                        Some(s) => s.bytes += n,
                        None => self.skip = Some(Skip { bytes: n, reason }),
                    }
                }
                Step::Need => break,
            }
        }
        // Reclaim consumed front bytes once they dominate the buffer.
        if self.pos >= 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Emits the pending skipped span, if any.
    fn flush_skip(&mut self) {
        if let Some(s) = self.skip.take() {
            self.resynced += 1;
            self.frames.push(BinFrame::Skipped { bytes: s.bytes, reason: s.reason });
        }
    }

    /// Attempts to decode one frame at the buffer front.
    // hot-path
    fn try_frame(&self, at_eof: bool) -> Step {
        let rest = match self.buf.get(self.pos..) {
            Some(r) if !r.is_empty() => r,
            _ => return Step::Need,
        };
        if rest[0] != MARKER {
            // Hunt for the next possible frame start; everything before
            // it is part of the current skipped span.
            let n = rest.iter().position(|&b| b == MARKER).unwrap_or(rest.len());
            return Step::Skip(n.max(1), "bad frame marker");
        }
        let Some(header) = rest.get(..FRAME_LEN) else {
            if at_eof {
                return Step::Skip(rest.len(), "truncated frame at end of stream");
            }
            return Step::Need;
        };
        let stored = u16::from_le_bytes([header[2], header[3]]);
        let Some(body) = header.get(4..) else { return Step::Need };
        let Some(tenant) = read_u32(body, 0) else { return Step::Need };
        match header[1] {
            KIND_SAMPLE => {
                if checksum(KIND_SAMPLE, body, &[]) != stored {
                    return Step::Skip(1, "frame checksum mismatch");
                }
                let (Some(access), Some(miss)) = (read_f64(body, 4), read_f64(body, 12)) else {
                    return Step::Need;
                };
                Step::Frame(BinFrame::Sample { tenant, access, miss }, FRAME_LEN)
            }
            KIND_CLOSE => {
                if checksum(KIND_CLOSE, body, &[]) != stored {
                    return Step::Skip(1, "frame checksum mismatch");
                }
                Step::Frame(BinFrame::Close { tenant }, FRAME_LEN)
            }
            KIND_DEFINE => {
                let Some(len) = read_u32(body, 4) else { return Step::Need };
                let name_len = len as usize;
                if name_len > MAX_NAME_LEN {
                    return Step::Skip(1, "oversized tenant name");
                }
                let total = FRAME_LEN + name_len;
                let Some(name_bytes) = rest.get(FRAME_LEN..total) else {
                    if at_eof {
                        return Step::Skip(rest.len(), "truncated frame at end of stream");
                    }
                    return Step::Need;
                };
                if checksum(KIND_DEFINE, body, name_bytes) != stored {
                    return Step::Skip(1, "frame checksum mismatch");
                }
                match String::from_utf8(name_bytes.to_vec()) {
                    Ok(name) => Step::Frame(BinFrame::Define { tenant, name }, total),
                    Err(_) => Step::Skip(1, "invalid UTF-8 in tenant name"),
                }
            }
            _ => Step::Skip(1, "unknown frame kind"),
        }
    }
}

/// Reads a little-endian `u32` at `at`, if in bounds.
// hot-path
fn read_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

/// Reads a little-endian `f64` (bit pattern) at `at`, if in bounds.
// hot-path
fn read_f64(b: &[u8], at: usize) -> Option<f64> {
    Some(f64::from_bits(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_stream() -> (Vec<u8>, Vec<BinFrame>) {
        let mut enc = Encoder::new();
        let mut out = Vec::new();
        enc.sample("vm-a", 1200.0, 34.0, &mut out).unwrap();
        enc.sample("vm-b", 980.5, 12.25, &mut out).unwrap();
        enc.sample("vm-a", 1180.0, 30.0, &mut out).unwrap();
        enc.close("vm-b", &mut out).unwrap();
        let expected = vec![
            BinFrame::Define { tenant: 0, name: "vm-a".to_string() },
            BinFrame::Sample { tenant: 0, access: 1200.0, miss: 34.0 },
            BinFrame::Define { tenant: 1, name: "vm-b".to_string() },
            BinFrame::Sample { tenant: 1, access: 980.5, miss: 12.25 },
            BinFrame::Sample { tenant: 0, access: 1180.0, miss: 30.0 },
            BinFrame::Close { tenant: 1 },
        ];
        (out, expected)
    }

    fn decode_all(bytes: &[u8]) -> Vec<BinFrame> {
        let mut dec = BinDecoder::new();
        dec.push_bytes(bytes);
        let mut frames = dec.drain();
        frames.extend(dec.finish());
        frames
    }

    #[test]
    fn roundtrip_with_dictionary() {
        let (bytes, expected) = encode_stream();
        assert_eq!(&bytes[..MAGIC.len()], &MAGIC);
        let frames = decode_all(&bytes[MAGIC.len()..]);
        assert_eq!(frames, expected);
    }

    #[test]
    fn chunked_decode_is_invariant() {
        let (bytes, expected) = encode_stream();
        let body = &bytes[MAGIC.len()..];
        for chunk in [1usize, 3, 7, 23, 64] {
            let mut dec = BinDecoder::new();
            let mut frames = Vec::new();
            for piece in body.chunks(chunk) {
                dec.push_bytes(piece);
                frames.extend(dec.drain());
            }
            frames.extend(dec.finish());
            assert_eq!(frames, expected, "chunk size {chunk}");
            assert_eq!(dec.frames(), expected.len() as u64);
            assert_eq!(dec.resynced(), 0);
        }
    }

    #[test]
    fn corrupted_checksum_resyncs_to_next_frame() {
        let (mut bytes, expected) = encode_stream();
        // Flip a bit inside the first sample frame's access field.
        let define_len = FRAME_LEN + 4;
        let target = MAGIC.len() + define_len + 9;
        bytes[target] ^= 0x40;
        let frames = decode_all(&bytes[MAGIC.len()..]);
        let skips: Vec<_> = frames
            .iter()
            .filter(|f| matches!(f, BinFrame::Skipped { .. }))
            .collect();
        assert_eq!(skips.len(), 1, "frames: {frames:?}");
        assert!(matches!(
            skips[0],
            BinFrame::Skipped { bytes: FRAME_LEN, reason: "frame checksum mismatch" }
        ));
        // Every frame after the corrupted one survives.
        let good: Vec<_> = frames
            .iter()
            .filter(|f| !matches!(f, BinFrame::Skipped { .. }))
            .cloned()
            .collect();
        assert_eq!(good, [&expected[..1], &expected[2..]].concat());
    }

    #[test]
    fn truncated_tail_reports_span_on_finish() {
        let (bytes, _) = encode_stream();
        let body = &bytes[MAGIC.len()..];
        let cut = body.len() - 10;
        let mut dec = BinDecoder::new();
        dec.push_bytes(&body[..cut]);
        let frames = dec.finish();
        assert!(matches!(
            frames.last(),
            Some(BinFrame::Skipped { bytes: 14, reason: "truncated frame at end of stream" })
        ));
    }

    #[test]
    fn garbage_prefix_becomes_one_span() {
        let (bytes, expected) = encode_stream();
        let mut dirty = vec![0u8; 37];
        dirty.extend_from_slice(&bytes[MAGIC.len()..]);
        let frames = decode_all(&dirty);
        assert_eq!(
            frames.first(),
            Some(&BinFrame::Skipped { bytes: 37, reason: "bad frame marker" })
        );
        assert_eq!(&frames[1..], &expected[..]);
    }

    #[test]
    fn oversized_define_is_rejected() {
        let mut out = Vec::new();
        let long = "x".repeat(MAX_NAME_LEN + 1);
        assert_eq!(
            write_define(&mut out, 0, &long),
            Err(EncodeError::NameTooLong { len: MAX_NAME_LEN + 1 })
        );
        assert!(write_define(&mut out, 0, "ok").is_ok());
    }

    #[test]
    fn invalid_name_utf8_skips_frame() {
        let mut out = Vec::new();
        write_define(&mut out, 0, "ab").unwrap();
        // Corrupt the payload and re-stamp the checksum so only UTF-8
        // validity fails.
        let n = out.len();
        out[n - 1] = 0xFF;
        let c = checksum(out[1], &out[4..FRAME_LEN], &out[FRAME_LEN..]);
        out[2..4].copy_from_slice(&c.to_le_bytes());
        let frames = decode_all(&out);
        assert!(frames
            .iter()
            .any(|f| matches!(f, BinFrame::Skipped { reason: "invalid UTF-8 in tenant name", .. })));
        assert!(!frames.iter().any(|f| matches!(f, BinFrame::Define { .. })));
    }

    #[test]
    fn kind_byte_flip_fails_the_checksum() {
        // The kind byte sits outside the body, so it must be folded into
        // the checksum: a sample reinterpreted as a define (name_len 0
        // for integral access values) would otherwise verify and rebind
        // a wire id.
        let mut out = Vec::new();
        write_sample(&mut out, 3, 1000.0, 100.0);
        for kind in [KIND_CLOSE, KIND_DEFINE, 0x42] {
            let mut bytes = out.clone();
            bytes[1] = kind;
            let frames = decode_all(&bytes);
            assert!(
                frames.iter().all(|f| matches!(f, BinFrame::Skipped { .. })),
                "kind {kind}: {frames:?}"
            );
        }
    }

    #[test]
    fn drain_into_reuses_buffer() {
        let (bytes, expected) = encode_stream();
        let mut dec = BinDecoder::new();
        let mut scratch = vec![BinFrame::Close { tenant: 99 }];
        dec.push_bytes(&bytes[MAGIC.len()..]);
        dec.drain_into(&mut scratch);
        assert_eq!(scratch, expected);
    }

    #[test]
    fn dictionary_is_stable_across_interleaving() {
        let mut enc = Encoder::new();
        let mut out = Vec::new();
        for round in 0..3 {
            for name in ["t0", "t1", "t2"] {
                enc.sample(name, round as f64, 0.0, &mut out).unwrap();
            }
        }
        assert_eq!(enc.tenants(), 3);
        let frames = decode_all(&out[MAGIC.len()..]);
        let defines = frames
            .iter()
            .filter(|f| matches!(f, BinFrame::Define { .. }))
            .count();
        assert_eq!(defines, 3, "each tenant defined exactly once");
    }
}
