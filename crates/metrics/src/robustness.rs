//! Failure injection: how SDS behaves when the measurement channel
//! itself misbehaves.
//!
//! The paper assumes PCM delivers a clean sample every `T_PCM`. In
//! production the counter path is less tidy: samples get dropped when
//! the management core is busy, multiplexed PMU reads add noise, and a
//! hypervisor hiccup can freeze the sampler for a while. This module
//! wraps a detector's input stream with configurable fault models so the
//! schemes' robustness can be measured (an extension beyond the paper's
//! evaluation; see `DESIGN.md` §7).
//!
//! Fault models:
//!
//! * **dropout** — each sample is lost independently with probability
//!   `p`; the previous value is repeated (what a real sampler's
//!   last-value cache does).
//! * **noise** — multiplicative Gaussian jitter on every sample.
//! * **freeze** — occasional multi-tick stretches during which the
//!   sampler repeats a stale value.

use memdos_core::detector::{Detector, DetectorStep, Observation};
use memdos_sim::rng::Rng;

/// Fault-injection configuration for the measurement channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-sample dropout probability (repeat previous value).
    pub dropout: f64,
    /// Relative standard deviation of multiplicative Gaussian noise
    /// (0.05 = 5 % jitter).
    pub noise_rel_std: f64,
    /// Per-sample probability of entering a freeze.
    pub freeze_prob: f64,
    /// Inclusive freeze length range in samples.
    pub freeze_len: (u32, u32),
}

impl FaultSpec {
    /// A clean channel (no faults).
    pub fn none() -> Self {
        FaultSpec { dropout: 0.0, noise_rel_std: 0.0, freeze_prob: 0.0, freeze_len: (0, 0) }
    }

    /// A moderately unhealthy channel: 2 % dropout, 5 % jitter, and a
    /// ~1-second freeze roughly every 100 seconds.
    pub fn degraded() -> Self {
        FaultSpec {
            dropout: 0.02,
            noise_rel_std: 0.05,
            freeze_prob: 0.0001,
            freeze_len: (50, 150),
        }
    }
}

/// Wraps a detector, corrupting its observation stream per a
/// [`FaultSpec`]. The wrapped detector's alarm state passes through
/// unchanged.
#[derive(Debug)]
pub struct FaultyChannel<D> {
    inner: D,
    spec: FaultSpec,
    rng: Rng,
    last: Option<Observation>,
    freeze_left: u32,
    corrupted_samples: u64,
}

impl<D: Detector> FaultyChannel<D> {
    /// Wraps `inner` with the given fault model and RNG seed.
    pub fn new(inner: D, spec: FaultSpec, seed: u64) -> Self {
        FaultyChannel {
            inner,
            spec,
            rng: Rng::new(seed),
            last: None,
            freeze_left: 0,
            corrupted_samples: 0,
        }
    }

    /// Number of samples that were dropped, frozen or noised.
    pub fn corrupted_samples(&self) -> u64 {
        self.corrupted_samples
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn corrupt(&mut self, obs: Observation) -> Observation {
        // Freeze: repeat the stale value for a stretch.
        if self.freeze_left > 0 {
            self.freeze_left -= 1;
            self.corrupted_samples += 1;
            return self.last.unwrap_or(obs);
        }
        if self.spec.freeze_prob > 0.0 && self.rng.chance(self.spec.freeze_prob) {
            self.freeze_left = self
                .rng
                .range_inclusive(self.spec.freeze_len.0 as u64, self.spec.freeze_len.1 as u64)
                as u32;
        }
        // Dropout: repeat the previous value.
        if self.spec.dropout > 0.0 && self.rng.chance(self.spec.dropout) {
            self.corrupted_samples += 1;
            return self.last.unwrap_or(obs);
        }
        // Noise: multiplicative jitter, clamped non-negative.
        if self.spec.noise_rel_std > 0.0 {
            self.corrupted_samples += 1;
            let j = |rng: &mut Rng, v: f64| {
                (v * (1.0 + rng.gaussian(0.0, 1.0) * self.spec.noise_rel_std)).max(0.0)
            };
            return Observation {
                access_num: j(&mut self.rng, obs.access_num),
                miss_num: j(&mut self.rng, obs.miss_num),
            };
        }
        obs
    }
}

impl<D: Detector> Detector for FaultyChannel<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn on_observation(&mut self, obs: Observation) -> DetectorStep {
        let corrupted = self.corrupt(obs);
        self.last = Some(corrupted);
        self.inner.on_observation(corrupted)
    }

    fn alarm_active(&self) -> bool {
        self.inner.alarm_active()
    }

    fn activations(&self) -> u64 {
        self.inner.activations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdos_core::config::SdsBParams;
    use memdos_core::sdsb::SdsB;
    use memdos_sim::pcm::Stat;

    fn detector() -> SdsB {
        SdsB::new(
            SdsBParams {
                window: 10,
                step: 5,
                alpha: 0.5,
                k: 2.0,
                h_c: 3,
                stat: Stat::AccessNum,
            },
            1000.0,
            100.0,
        )
        .expect("valid")
    }

    fn obs(a: f64) -> Observation {
        Observation { access_num: a, miss_num: 10.0 }
    }

    #[test]
    fn clean_channel_is_transparent() {
        let mut plain = detector();
        let mut wrapped = FaultyChannel::new(detector(), FaultSpec::none(), 1);
        for i in 0..500u64 {
            let o = obs(1000.0 + (i % 17) as f64);
            assert_eq!(plain.on_observation(o), wrapped.on_observation(o));
        }
        assert_eq!(wrapped.corrupted_samples(), 0);
        assert!(!wrapped.alarm_active());
    }

    #[test]
    fn detection_survives_degraded_channel() {
        let mut wrapped = FaultyChannel::new(detector(), FaultSpec::degraded(), 2);
        for i in 0..300u64 {
            wrapped.on_observation(obs(1000.0 + (i % 17) as f64));
        }
        assert!(!wrapped.alarm_active(), "false alarm on degraded channel");
        // Bus-locking collapse: still detected through the faults.
        for _ in 0..300u64 {
            wrapped.on_observation(obs(100.0));
        }
        assert!(wrapped.alarm_active(), "attack missed on degraded channel");
        assert!(wrapped.corrupted_samples() > 0);
    }

    #[test]
    fn heavy_noise_widens_but_does_not_break() {
        let spec = FaultSpec { noise_rel_std: 0.15, ..FaultSpec::none() };
        let mut wrapped = FaultyChannel::new(detector(), spec, 3);
        for i in 0..600u64 {
            wrapped.on_observation(obs(1000.0 + (i % 17) as f64));
        }
        // 15 % multiplicative noise is mostly averaged out by W=10
        // smoothing against a k·σ = 200 band.
        assert!(!wrapped.alarm_active(), "noise alone tripped the alarm");
    }

    #[test]
    fn freeze_repeats_last_value() {
        let spec = FaultSpec {
            freeze_prob: 1.0, // freeze immediately after the first sample
            freeze_len: (5, 5),
            ..FaultSpec::none()
        };
        let mut wrapped = FaultyChannel::new(detector(), spec, 4);
        wrapped.on_observation(obs(500.0));
        for _ in 0..5 {
            wrapped.on_observation(obs(9999.0)); // ignored: frozen
        }
        assert_eq!(wrapped.corrupted_samples(), 5);
    }

    #[test]
    fn name_and_counters_pass_through() {
        let wrapped = FaultyChannel::new(detector(), FaultSpec::none(), 5);
        assert!(wrapped.name().contains("SDS/B"));
        assert_eq!(wrapped.activations(), 0);
        assert_eq!(wrapped.inner().consecutive_violations(), 0);
    }
}
