//! Hand-rolled line-delimited JSON (JSONL) codec.
//!
//! The engine's wire protocol is one flat JSON object per line: string,
//! integer/float and boolean values only — no nesting, no arrays. This
//! module supplies the std-only parse/serialize pair (the workspace has
//! no serde), sharing the report-writing philosophy of
//! [`crate::report`]: small, explicit, dependency-free.
//!
//! Serialization is deterministic: keys are emitted in insertion order,
//! floats through Rust's shortest-roundtrip `Display` (the same bytes on
//! every platform for the same bit pattern), and escaping covers exactly
//! `"`/`\\` plus control characters (as `\u00XX`). Parsing accepts the
//! standard JSON escapes and both integer and float notation.

use std::fmt::Write as _;

/// One scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (stored as `f64`; integers round-trip exactly up to
    /// 2^53).
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A flat JSON object with insertion-ordered keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a string field.
    pub fn push_str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Str(value.into())));
        self
    }

    /// Appends a numeric field.
    pub fn push_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Num(value)));
        self
    }

    /// Appends a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Bool(value)));
        self
    }

    /// First value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value under `key`, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Numeric value under `key`, if present and a number.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// All fields in insertion order.
    pub fn entries(&self) -> &[(String, JsonValue)] {
        &self.entries
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to one compact JSON line (no trailing newline).
    ///
    /// Non-finite numbers serialize as `null`-free `0` replacements are
    /// **not** applied here — they are the caller's bug; this codec
    /// emits them as `null` so a corrupt value is visible, not hidden.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(16 + 16 * self.entries.len());
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            match v {
                JsonValue::Str(s) => escape_into(&mut out, s),
                JsonValue::Num(n) => {
                    if n.is_finite() {
                        // Integers print without a fraction; everything
                        // else uses shortest-roundtrip formatting.
                        // lint:allow(float-eq) -- exact zero fraction selects integer formatting; near-integers must round-trip via {n}
                        if n.fract() == 0.0 && n.abs() < 9.0e15 {
                            let _ = write!(out, "{}", *n as i64);
                        } else {
                            let _ = write!(out, "{n}");
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line into a flat object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem: non-object
    /// lines, nested values, unterminated strings, bad escapes, or
    /// malformed numbers.
    pub fn parse(line: &str) -> Result<Self, String> {
        Parser { bytes: line.as_bytes(), pos: 0 }.parse_object()
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of line", b as char)),
        }
    }

    fn parse_object(mut self) -> Result<JsonObject, String> {
        self.skip_ws();
        self.expect_byte(b'{')?;
        let mut obj = JsonObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return self.finish(obj);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            obj.entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return self.finish(obj),
                Some(b) => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        b as char
                    ))
                }
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn finish(mut self, obj: JsonObject) -> Result<JsonObject, String> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(obj)
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'{' | b'[') => Err(format!(
                "nested values are not part of the protocol (byte {})",
                self.pos
            )),
            Some(_) => self.parse_number(),
            None => Err("expected a value at end of line".to_string()),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("malformed keyword at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are outside the protocol's
                        // character set; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        self.pos = end;
                    }
                    Some(b) => return Err(format!("bad escape '\\{}'", b as char)),
                    None => return Err("unterminated escape".to_string()),
                },
                Some(b) if b < 0x20 => {
                    return Err("raw control character in string".to_string())
                }
                Some(_) => {
                    // Re-scan from the byte we consumed to keep UTF-8
                    // sequences intact.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_typical_sample_line() {
        let mut obj = JsonObject::new();
        obj.push_str("tenant", "vm-0").push_num("access", 1234.0).push_num("miss", 56.0);
        let line = obj.to_line();
        assert_eq!(line, r#"{"tenant":"vm-0","access":1234,"miss":56}"#);
        let back = JsonObject::parse(&line).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn roundtrips_floats_and_bools() {
        let mut obj = JsonObject::new();
        obj.push_num("period", 17.25).push_bool("periodic", true).push_num("neg", -0.5);
        let back = JsonObject::parse(&obj.to_line()).unwrap();
        assert_eq!(back.get_f64("period"), Some(17.25));
        assert_eq!(back.get("periodic").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(back.get_f64("neg"), Some(-0.5));
    }

    #[test]
    fn escapes_are_symmetric() {
        let mut obj = JsonObject::new();
        obj.push_str("name", "a\"b\\c\nd\te\u{1}");
        let line = obj.to_line();
        let back = JsonObject::parse(&line).unwrap();
        assert_eq!(back.get_str("name"), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_whitespace_and_scientific_notation() {
        let obj = JsonObject::parse(r#" { "a" : 1e3 , "b" : "x" } "#).unwrap();
        assert_eq!(obj.get_f64("a"), Some(1000.0));
        assert_eq!(obj.get_str("b"), Some("x"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(JsonObject::parse("").is_err());
        assert!(JsonObject::parse("[1,2]").is_err());
        assert!(JsonObject::parse(r#"{"a":}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":1"#).is_err());
        assert!(JsonObject::parse(r#"{"a":{"b":1}}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":1} trailing"#).is_err());
        assert!(JsonObject::parse(r#"{"a":"unterminated}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":nope}"#).is_err());
    }

    #[test]
    fn empty_object_roundtrips() {
        let obj = JsonObject::parse("{}").unwrap();
        assert!(obj.is_empty());
        assert_eq!(obj.to_line(), "{}");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let mut obj = JsonObject::new();
        obj.push_num("bad", f64::NAN);
        assert_eq!(obj.to_line(), r#"{"bad":null}"#);
    }

    #[test]
    fn unicode_content_roundtrips() {
        let mut obj = JsonObject::new();
        obj.push_str("name", "tenant-α-β");
        let back = JsonObject::parse(&obj.to_line()).unwrap();
        assert_eq!(back.get_str("name"), Some("tenant-α-β"));
    }
}
