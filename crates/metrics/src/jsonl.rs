//! Hand-rolled line-delimited JSON (JSONL) codec.
//!
//! The engine's wire protocol is one flat JSON object per line: string,
//! integer/float and boolean values only — no nesting, no arrays. This
//! module supplies the std-only parse/serialize pair (the workspace has
//! no serde), sharing the report-writing philosophy of
//! [`crate::report`]: small, explicit, dependency-free.
//!
//! Serialization is deterministic: keys are emitted in insertion order,
//! floats through Rust's shortest-roundtrip `Display` (the same bytes on
//! every platform for the same bit pattern), and escaping covers exactly
//! `"`/`\\` plus control characters (as `\u00XX`). Parsing accepts the
//! standard JSON escapes and both integer and float notation.
//!
//! Two surfaces share that grammar:
//!
//! * the [`JsonObject`] tree — general, allocating, used by reports and
//!   the [`Decoder`]'s resynchronisation path;
//! * the ingest fast path — [`parse_record_borrowed`] decodes a
//!   protocol record as borrowed spans with zero heap allocation, and
//!   [`LineBuf`] renders event lines into a reusable buffer through the
//!   shared [`write_f64`]/[`write_u64`] formatters, byte-identical to
//!   [`JsonObject::to_line`].

use std::fmt::Write as _;

/// One scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (stored as `f64`; integers round-trip exactly up to
    /// 2^53).
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A flat JSON object with insertion-ordered keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a string field.
    pub fn push_str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Str(value.into())));
        self
    }

    /// Appends a numeric field.
    pub fn push_num(&mut self, key: &str, value: f64) -> &mut Self {
        // lint:allow(hot-propagate) -- JsonObject builds per-transition session events, not per-sample lines; the sample path renders through LineBuf
        self.entries.push((key.to_string(), JsonValue::Num(value)));
        self
    }

    /// Appends a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        // lint:allow(hot-propagate) -- JsonObject builds per-transition session events, not per-sample lines; the sample path renders through LineBuf
        self.entries.push((key.to_string(), JsonValue::Bool(value)));
        self
    }

    /// First value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value under `key`, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Numeric value under `key`, if present and a number.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// All fields in insertion order.
    pub fn entries(&self) -> &[(String, JsonValue)] {
        &self.entries
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to one compact JSON line (no trailing newline).
    ///
    /// Non-finite numbers serialize as `null`-free `0` replacements are
    /// **not** applied here — they are the caller's bug; this codec
    /// emits them as `null` so a corrupt value is visible, not hidden.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(16 + 16 * self.entries.len());
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            match v {
                JsonValue::Str(s) => escape_into(&mut out, s),
                JsonValue::Num(n) => write_f64(&mut out, *n),
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line into a flat object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem: non-object
    /// lines, nested values, unterminated strings, bad escapes, or
    /// malformed numbers.
    // lint:allow(hot-propagate) -- the error String is built only for malformed input, after which the record is rejected anyway
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut parser = Parser { bytes: line.as_bytes(), pos: 0 };
        let obj = parser.parse_object()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.pos));
        }
        Ok(obj)
    }

    /// Parses one object from the front of `text`, returning it together
    /// with the number of bytes consumed. Unlike [`JsonObject::parse`],
    /// trailing content after the closing `}` is allowed — this is the
    /// building block of [`resync_line`], which recovers records from
    /// lines where a corrupted record and a valid one were fused.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse_prefix(text: &str) -> Result<(Self, usize), String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let obj = parser.parse_object()?;
        Ok((obj, parser.pos))
    }
}

/// One segment of a dirty input line, in line order: either a recovered
/// object or a span of bytes the decoder had to skip to resynchronise.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A valid flat object recovered from the line.
    Object(JsonObject),
    /// Bytes skipped while hunting for the next parsable record.
    Skipped {
        /// Number of bytes the span covers.
        bytes: usize,
        /// Why the span failed to parse (first failure in the span).
        reason: String,
    },
}

/// Scans a line that failed (or may fail) to parse as a single object
/// and recovers every embedded valid record, resynchronising past
/// corrupted spans.
///
/// The scanner walks the line left to right: at each `{` it attempts a
/// prefix parse ([`JsonObject::parse_prefix`]); on success the object is
/// emitted and scanning resumes after it, on failure the next `{` is
/// tried. Bytes not covered by a recovered object are reported as
/// [`Segment::Skipped`] spans carrying the first parse failure seen in
/// the span, so a truncated record fused with a healthy one
/// (`{"a":1,"b{"tenant":...}`) loses only the corrupted prefix.
///
/// Whitespace-only residue is not reported. The scan is linear in the
/// number of `{` candidates; callers bounding line length (see
/// [`Decoder`]) bound its cost.
pub fn resync_line(line: &str) -> Vec<Segment> {
    let mut segments = Vec::new();
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    // Start of the current unconsumed (potentially skipped) span, plus
    // the first parse failure inside it.
    let mut skip_from = 0usize;
    let mut skip_reason: Option<String> = None;
    let flush_skip = |segments: &mut Vec<Segment>,
                          from: usize,
                          to: usize,
                          reason: &mut Option<String>| {
        let span = line.get(from..to).unwrap_or("");
        if !span.trim().is_empty() {
            segments.push(Segment::Skipped {
                bytes: to - from,
                reason: reason
                    .take()
                    .unwrap_or_else(|| "no object found".to_string()),
            });
        }
        *reason = None;
    };
    while pos < bytes.len() {
        let Some(off) = line.get(pos..).and_then(|rest| rest.find('{')) else {
            break;
        };
        let brace = pos + off;
        match line.get(brace..).map(JsonObject::parse_prefix) {
            Some(Ok((obj, consumed))) => {
                flush_skip(&mut segments, skip_from, brace, &mut skip_reason);
                segments.push(Segment::Object(obj));
                pos = brace + consumed;
                skip_from = pos;
            }
            Some(Err(reason)) => {
                if skip_reason.is_none() {
                    skip_reason = Some(reason);
                }
                pos = brace + 1;
            }
            None => break,
        }
    }
    flush_skip(&mut segments, skip_from, bytes.len(), &mut skip_reason);
    segments
}

/// One decoded frame from a [`Decoder`]: a record or a skipped span.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A valid flat object.
    Object(JsonObject),
    /// Bytes the decoder skipped to resynchronise (corruption, oversized
    /// lines, invalid UTF-8).
    Skipped {
        /// Number of bytes the span covers.
        bytes: usize,
        /// Why the span was skipped.
        reason: String,
    },
}

/// Incremental byte-stream JSONL decoder with resynchronisation and
/// bounded buffering.
///
/// Feed arbitrary byte chunks with [`Decoder::push_bytes`] and drain
/// complete frames with [`Decoder::drain`]; call [`Decoder::finish`] at
/// end of stream for the trailing unterminated line. The decoder never
/// panics on any input and always resynchronises to the next valid
/// record:
///
/// * lines longer than `max_line` bytes are discarded wholesale (one
///   `Skipped` frame), so a stream that stops sending newlines cannot
///   grow the buffer without bound;
/// * invalid UTF-8 splits the line — the valid prefix is scanned for
///   records, the offending bytes are skipped, and scanning resumes
///   after them;
/// * within a (UTF-8-valid) line, [`resync_line`] recovers every
///   embedded record around corrupted spans.
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    max_line: usize,
    /// In discard mode (oversized line): bytes thrown away so far.
    discarding: Option<u64>,
    frames: Vec<Frame>,
    lines: u64,
    /// Objects recovered by resynchronisation from dirty lines (lines
    /// that did not parse cleanly as exactly one object).
    resynced: u64,
}

/// Default per-line byte cap for [`Decoder::new`].
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

impl Decoder {
    /// A decoder with the [`DEFAULT_MAX_LINE`] line cap.
    pub fn new() -> Self {
        Decoder::with_max_line(DEFAULT_MAX_LINE)
    }

    /// A decoder with a custom per-line byte cap (minimum 16).
    pub fn with_max_line(max_line: usize) -> Self {
        Decoder {
            buf: Vec::new(),
            max_line: max_line.max(16),
            discarding: None,
            frames: Vec::new(),
            lines: 0,
            resynced: 0,
        }
    }

    /// Number of physical lines (newline-terminated or final partial)
    /// consumed so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Objects recovered by resynchronisation from dirty lines so far
    /// (a clean one-object line does not count).
    pub fn resynced(&self) -> u64 {
        self.resynced
    }

    /// Feeds one chunk of the stream into the decoder.
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        for &b in chunk {
            if let Some(dropped) = self.discarding.as_mut() {
                if b == b'\n' {
                    let total = *dropped;
                    self.discarding = None;
                    self.lines += 1;
                    self.frames.push(Frame::Skipped {
                        bytes: total as usize,
                        reason: format!(
                            "line exceeds the {}-byte cap",
                            self.max_line
                        ),
                    });
                } else {
                    *dropped += 1;
                }
                continue;
            }
            if b == b'\n' {
                self.lines += 1;
                let line = std::mem::take(&mut self.buf);
                self.decode_line(&line);
            } else {
                self.buf.push(b);
                if self.buf.len() > self.max_line {
                    self.discarding = Some(self.buf.len() as u64);
                    self.buf.clear();
                }
            }
        }
    }

    /// Takes every frame decoded so far.
    pub fn drain(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.frames)
    }

    /// Flushes the trailing unterminated line (end of stream) and takes
    /// the remaining frames.
    pub fn finish(&mut self) -> Vec<Frame> {
        if let Some(dropped) = self.discarding.take() {
            self.lines += 1;
            self.frames.push(Frame::Skipped {
                bytes: dropped as usize,
                reason: format!("line exceeds the {}-byte cap", self.max_line),
            });
        } else if !self.buf.is_empty() {
            self.lines += 1;
            let line = std::mem::take(&mut self.buf);
            self.decode_line(&line);
        }
        self.drain()
    }

    /// Decodes one complete physical line (no trailing newline) into
    /// frames, splitting around invalid UTF-8.
    fn decode_line(&mut self, line: &[u8]) {
        let mut rest = line;
        loop {
            match std::str::from_utf8(rest) {
                Ok(text) => {
                    self.scan_text(text);
                    return;
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    if let Some(prefix) =
                        rest.get(..valid).and_then(|p| std::str::from_utf8(p).ok())
                    {
                        self.scan_text(prefix);
                    }
                    let bad = e.error_len().unwrap_or(rest.len() - valid).max(1);
                    self.frames.push(Frame::Skipped {
                        bytes: bad,
                        reason: "invalid UTF-8".to_string(),
                    });
                    let next = (valid + bad).min(rest.len());
                    rest = rest.get(next..).unwrap_or(&[]);
                    if rest.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    fn scan_text(&mut self, text: &str) {
        if text.trim().is_empty() {
            return;
        }
        // Fast path: the common case of one clean object per line.
        if let Ok(obj) = JsonObject::parse(text) {
            self.frames.push(Frame::Object(obj));
            return;
        }
        for segment in resync_line(text) {
            self.frames.push(match segment {
                Segment::Object(obj) => {
                    self.resynced += 1;
                    Frame::Object(obj)
                }
                Segment::Skipped { bytes, reason } => {
                    Frame::Skipped { bytes, reason }
                }
            });
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of line", b as char)),
        }
    }

    fn parse_object(&mut self) -> Result<JsonObject, String> {
        self.skip_ws();
        self.expect_byte(b'{')?;
        let mut obj = JsonObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            obj.entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(obj),
                Some(b) => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        b as char
                    ))
                }
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'{' | b'[') => Err(format!(
                "nested values are not part of the protocol (byte {})",
                self.pos
            )),
            Some(_) => self.parse_number(),
            None => Err("expected a value at end of line".to_string()),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("malformed keyword at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are outside the protocol's
                        // character set; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        self.pos = end;
                    }
                    Some(b) => return Err(format!("bad escape '\\{}'", b as char)),
                    None => return Err("unterminated escape".to_string()),
                },
                Some(b) if b < 0x20 => {
                    return Err("raw control character in string".to_string())
                }
                Some(_) => {
                    // Re-scan from the byte we consumed to keep UTF-8
                    // sequences intact.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }
}

/// Appends `n` in decimal without going through `core::fmt`.
// hot-path
pub fn write_u64(out: &mut String, mut n: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    loop {
        at -= 1;
        if let Some(d) = digits.get_mut(at) {
            *d = b'0' + (n % 10) as u8;
        }
        n /= 10;
        if n == 0 || at == 0 {
            break;
        }
    }
    if let Ok(text) = std::str::from_utf8(digits.get(at..).unwrap_or(&[])) {
        out.push_str(text);
    }
}

/// Appends `n` in decimal, byte-identical to `i64`'s `Display`.
// hot-path
pub fn write_i64(out: &mut String, n: i64) {
    if n < 0 {
        out.push('-');
    }
    write_u64(out, n.unsigned_abs());
}

/// Appends `n` in the codec's canonical number format: integers without
/// a fraction (fast digit loop), everything else through Rust's
/// shortest-roundtrip `Display`, non-finite values as `null`. This is
/// the single authority both [`JsonObject::to_line`] and [`LineBuf`]
/// render numbers through, so their outputs are byte-identical.
// hot-path
pub fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        // Integers print without a fraction; everything else uses
        // shortest-roundtrip formatting.
        // lint:allow(float-eq) -- exact zero fraction selects integer formatting; near-integers must round-trip via {n}
        if n.fract() == 0.0 && n.abs() < 9.0e15 {
            write_i64(out, n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        out.push_str("null");
    }
}

/// A reusable JSONL line writer: the allocation-free counterpart of
/// building a [`JsonObject`] and calling [`JsonObject::to_line`]. The
/// internal buffer is cleared — not freed — by [`LineBuf::begin`], so a
/// long-lived `LineBuf` renders every event of a stream with zero
/// steady-state allocation. Field for field it emits exactly the bytes
/// `to_line` would (same escaping, same number format).
#[derive(Debug, Default)]
pub struct LineBuf {
    buf: String,
    fields: usize,
}

impl LineBuf {
    /// An empty writer.
    pub fn new() -> Self {
        LineBuf::default()
    }

    /// Starts a new line, discarding the previous one (the allocation is
    /// kept).
    // hot-path
    pub fn begin(&mut self) -> &mut Self {
        self.buf.clear();
        self.fields = 0;
        self.buf.push('{');
        self
    }

    // hot-path
    fn sep(&mut self) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        self.fields += 1;
    }

    /// Appends a string field.
    // hot-path
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, key);
        self.buf.push(':');
        escape_into(&mut self.buf, value);
        self
    }

    /// Appends a numeric field in the canonical [`write_f64`] format.
    // hot-path
    pub fn field_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, key);
        self.buf.push(':');
        write_f64(&mut self.buf, value);
        self
    }

    /// Appends an unsigned integer field via the fast digit loop.
    ///
    /// Matches [`LineBuf::field_num`] byte for byte up to 2^53, the
    /// codec's exact-integer range.
    // hot-path
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, key);
        self.buf.push(':');
        write_u64(&mut self.buf, value);
        self
    }

    /// Appends a boolean field.
    // hot-path
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        escape_into(&mut self.buf, key);
        self.buf.push(':');
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends an already-typed [`JsonValue`] field.
    // hot-path
    pub fn field_value(&mut self, key: &str, value: &JsonValue) -> &mut Self {
        match value {
            JsonValue::Str(s) => self.field_str(key, s),
            JsonValue::Num(n) => self.field_num(key, *n),
            JsonValue::Bool(b) => self.field_bool(key, *b),
        }
    }

    /// Closes the line and returns it (no trailing newline). The buffer
    /// stays valid until the next [`LineBuf::begin`].
    // hot-path
    pub fn end(&mut self) -> &str {
        self.buf.push('}');
        &self.buf
    }
}

/// Why a line is not a protocol record. The fast path returns this as a
/// small `Copy` enum — no `String` is built unless an error is actually
/// rendered (see [`RecordError::reason`]), which keeps rejected lines
/// cheap in the ingest hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The line is not one syntactically valid flat JSON object.
    Syntax,
    /// No `"tenant"` field with a string value.
    MissingTenant,
    /// The `"tenant"` string is empty.
    EmptyTenant,
    /// A `"ctl"` field is present but not a string.
    CtlNotString,
    /// The `"ctl"` verb is not one the protocol knows.
    UnknownCtl,
    /// No numeric `"access"` field on a sample record.
    MissingAccess,
    /// No numeric `"miss"` field on a sample record.
    MissingMiss,
    /// `"access"`/`"miss"` parsed to a non-finite number.
    NonFinite,
}

impl RecordError {
    /// The human-readable reason, rendered lazily (static, no
    /// allocation).
    pub fn reason(self) -> &'static str {
        match self {
            RecordError::Syntax => "malformed record syntax",
            RecordError::MissingTenant => "missing string field \"tenant\"",
            RecordError::EmptyTenant => "field \"tenant\" must be non-empty",
            RecordError::CtlNotString => "field \"ctl\" must be a string",
            RecordError::UnknownCtl => "unknown control verb",
            RecordError::MissingAccess => "missing numeric field \"access\"",
            RecordError::MissingMiss => "missing numeric field \"miss\"",
            RecordError::NonFinite => "counter fields must be finite",
        }
    }
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason())
    }
}

/// A protocol record borrowed straight from the line that carried it:
/// the tenant name is a span of the input, not a copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRecord<'a> {
    /// Tenant name (borrowed from the line; guaranteed escape-free, so
    /// the span *is* the decoded value).
    pub tenant: &'a str,
    /// Sample payload or control verb.
    pub kind: RawKind,
}

/// The payload of a [`RawRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawKind {
    /// A PCM sample: one `(AccessNum, MissNum)` pair.
    Sample {
        /// Bus accesses in the sampling period.
        access: f64,
        /// LLC misses in the sampling period.
        miss: f64,
    },
    /// The `{"ctl":"close"}` control record.
    Close,
}

/// Outcome of [`parse_record_borrowed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawParse<'a> {
    /// A record, decoded with zero heap allocation.
    Record(RawRecord<'a>),
    /// The line is *definitely* not a record, for this reason — the
    /// exact error the [`JsonObject`]-based slow path would report.
    Reject(RecordError),
    /// The fast path cannot decide without allocating (escape sequences
    /// in a key or in a protocol string value); run the slow path.
    Fallback,
}

/// Parses one protocol record directly from the line's bytes with zero
/// heap allocation — the engine's ingest fast path.
///
/// The grammar and field semantics mirror [`JsonObject::parse`] +
/// record validation exactly: flat objects only, duplicate keys
/// first-wins, the same escape/number syntax. Three-way contract:
///
/// * [`RawParse::Record`] — the slow path would accept with the same
///   field values;
/// * [`RawParse::Reject`] — the slow path would reject with the same
///   [`RecordError`];
/// * [`RawParse::Fallback`] — escapes touched a key or a protocol
///   string value, so decoding needs an allocation; the caller must
///   re-parse through the slow path. Clean machine-generated streams
///   never hit this.
// hot-path
pub fn parse_record_borrowed(line: &str) -> RawParse<'_> {
    let mut p = RawParser { bytes: line.as_bytes(), text: line, pos: 0 };
    // First occurrence per protocol key, matching `JsonObject::get`.
    let mut tenant: Option<RawValue<'_>> = None;
    let mut ctl: Option<RawValue<'_>> = None;
    let mut access: Option<RawValue<'_>> = None;
    let mut miss: Option<RawValue<'_>> = None;
    let mut escaped_key = false;

    p.skip_ws();
    if p.bump() != Some(b'{') {
        return RawParse::Reject(RecordError::Syntax);
    }
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let Ok(key) = p.parse_string_raw() else {
                return RawParse::Reject(RecordError::Syntax);
            };
            p.skip_ws();
            if p.bump() != Some(b':') {
                return RawParse::Reject(RecordError::Syntax);
            }
            p.skip_ws();
            let Ok(value) = p.parse_value_raw() else {
                return RawParse::Reject(RecordError::Syntax);
            };
            match key {
                // An escaped key may decode to a protocol field name
                // (and first-wins ordering would depend on it), so the
                // whole line needs the decoding path.
                RawStr::Escaped => escaped_key = true,
                RawStr::Plain("tenant") => {
                    if tenant.is_none() {
                        tenant = Some(value);
                    }
                }
                RawStr::Plain("ctl") => {
                    if ctl.is_none() {
                        ctl = Some(value);
                    }
                }
                RawStr::Plain("access") => {
                    if access.is_none() {
                        access = Some(value);
                    }
                }
                RawStr::Plain("miss") => {
                    if miss.is_none() {
                        miss = Some(value);
                    }
                }
                RawStr::Plain(_) => {}
            }
            p.skip_ws();
            match p.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return RawParse::Reject(RecordError::Syntax),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return RawParse::Reject(RecordError::Syntax);
    }
    if escaped_key {
        return RawParse::Fallback;
    }
    // Record validation, in the exact order of the slow path.
    let tenant = match tenant {
        Some(RawValue::Str(RawStr::Plain(s))) => s,
        Some(RawValue::Str(RawStr::Escaped)) => return RawParse::Fallback,
        _ => return RawParse::Reject(RecordError::MissingTenant),
    };
    if tenant.is_empty() {
        return RawParse::Reject(RecordError::EmptyTenant);
    }
    if let Some(ctl) = ctl {
        return match ctl {
            RawValue::Str(RawStr::Plain("close")) => {
                RawParse::Record(RawRecord { tenant, kind: RawKind::Close })
            }
            RawValue::Str(RawStr::Plain(_)) => RawParse::Reject(RecordError::UnknownCtl),
            RawValue::Str(RawStr::Escaped) => RawParse::Fallback,
            _ => RawParse::Reject(RecordError::CtlNotString),
        };
    }
    let access = match access {
        Some(RawValue::Num(n)) => n,
        _ => return RawParse::Reject(RecordError::MissingAccess),
    };
    let miss = match miss {
        Some(RawValue::Num(n)) => n,
        _ => return RawParse::Reject(RecordError::MissingMiss),
    };
    if !access.is_finite() || !miss.is_finite() {
        return RawParse::Reject(RecordError::NonFinite);
    }
    RawParse::Record(RawRecord { tenant, kind: RawKind::Sample { access, miss } })
}

/// A string scanned in place by [`RawParser`]: either a clean span (the
/// raw bytes are the decoded value) or one that contains escapes.
#[derive(Debug, Clone, Copy)]
enum RawStr<'a> {
    Plain(&'a str),
    Escaped,
}

/// A value scanned in place by [`RawParser`].
#[derive(Debug, Clone, Copy)]
enum RawValue<'a> {
    Str(RawStr<'a>),
    Num(f64),
    Bool,
}

/// The zero-allocation twin of [`Parser`]: identical control flow and
/// validation, but strings come back as spans of the input instead of
/// freshly decoded `String`s. Any divergence between the two is a bug —
/// the engine's parser-equivalence suite drives both over the same
/// corpus.
struct RawParser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> RawParser<'a> {
    // hot-path
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    // hot-path
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    // hot-path
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Scans a quoted string, validating the same escape grammar as
    /// [`Parser::parse_string`] without decoding it.
    // hot-path
    fn parse_string_raw(&mut self) -> Result<RawStr<'a>, ()> {
        if self.bump() != Some(b'"') {
            return Err(());
        }
        let start = self.pos;
        let mut escaped = false;
        loop {
            match self.bump() {
                Some(b'"') => {
                    let end = self.pos - 1;
                    return if escaped {
                        Ok(RawStr::Escaped)
                    } else {
                        // Both span boundaries sit on ASCII quotes, so
                        // the slice is valid UTF-8 whenever the input
                        // is (it is: we were handed a `&str`).
                        self.text.get(start..end).map(RawStr::Plain).ok_or(())
                    };
                }
                Some(b'\\') => {
                    escaped = true;
                    match self.bump() {
                        Some(b'"' | b'\\' | b'/' | b'n' | b'r' | b't' | b'b' | b'f') => {}
                        Some(b'u') => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ())?;
                            // Same scalar-value check as the slow path.
                            char::from_u32(code).ok_or(())?;
                            self.pos = end;
                        }
                        _ => return Err(()),
                    }
                }
                Some(b) if b < 0x20 => return Err(()),
                Some(_) => {}
                None => return Err(()),
            }
        }
    }

    // hot-path
    fn parse_number_raw(&mut self) -> Result<f64, ()> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ())?
            .parse::<f64>()
            .map_err(|_| ())
    }

    // hot-path
    fn parse_value_raw(&mut self) -> Result<RawValue<'a>, ()> {
        match self.peek() {
            Some(b'"') => self.parse_string_raw().map(RawValue::Str),
            Some(b't') => self.parse_keyword_raw("true"),
            Some(b'f') => self.parse_keyword_raw("false"),
            Some(b'{' | b'[') => Err(()),
            Some(_) => self.parse_number_raw().map(RawValue::Num),
            None => Err(()),
        }
    }

    // hot-path
    fn parse_keyword_raw(&mut self, word: &str) -> Result<RawValue<'a>, ()> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(RawValue::Bool)
        } else {
            Err(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_typical_sample_line() {
        let mut obj = JsonObject::new();
        obj.push_str("tenant", "vm-0").push_num("access", 1234.0).push_num("miss", 56.0);
        let line = obj.to_line();
        assert_eq!(line, r#"{"tenant":"vm-0","access":1234,"miss":56}"#);
        let back = JsonObject::parse(&line).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn roundtrips_floats_and_bools() {
        let mut obj = JsonObject::new();
        obj.push_num("period", 17.25).push_bool("periodic", true).push_num("neg", -0.5);
        let back = JsonObject::parse(&obj.to_line()).unwrap();
        assert_eq!(back.get_f64("period"), Some(17.25));
        assert_eq!(back.get("periodic").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(back.get_f64("neg"), Some(-0.5));
    }

    #[test]
    fn escapes_are_symmetric() {
        let mut obj = JsonObject::new();
        obj.push_str("name", "a\"b\\c\nd\te\u{1}");
        let line = obj.to_line();
        let back = JsonObject::parse(&line).unwrap();
        assert_eq!(back.get_str("name"), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_whitespace_and_scientific_notation() {
        let obj = JsonObject::parse(r#" { "a" : 1e3 , "b" : "x" } "#).unwrap();
        assert_eq!(obj.get_f64("a"), Some(1000.0));
        assert_eq!(obj.get_str("b"), Some("x"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(JsonObject::parse("").is_err());
        assert!(JsonObject::parse("[1,2]").is_err());
        assert!(JsonObject::parse(r#"{"a":}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":1"#).is_err());
        assert!(JsonObject::parse(r#"{"a":{"b":1}}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":1} trailing"#).is_err());
        assert!(JsonObject::parse(r#"{"a":"unterminated}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":nope}"#).is_err());
    }

    #[test]
    fn empty_object_roundtrips() {
        let obj = JsonObject::parse("{}").unwrap();
        assert!(obj.is_empty());
        assert_eq!(obj.to_line(), "{}");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let mut obj = JsonObject::new();
        obj.push_num("bad", f64::NAN);
        assert_eq!(obj.to_line(), r#"{"bad":null}"#);
    }

    #[test]
    fn unicode_content_roundtrips() {
        let mut obj = JsonObject::new();
        obj.push_str("name", "tenant-α-β");
        let back = JsonObject::parse(&obj.to_line()).unwrap();
        assert_eq!(back.get_str("name"), Some("tenant-α-β"));
    }

    #[test]
    fn parse_prefix_reports_consumed_bytes() {
        let text = r#"{"a":1} {"b":2}"#;
        let (obj, consumed) = JsonObject::parse_prefix(text).unwrap();
        assert_eq!(obj.get_f64("a"), Some(1.0));
        assert_eq!(consumed, 7);
        let (obj2, _) = JsonObject::parse_prefix(&text[consumed..]).unwrap();
        assert_eq!(obj2.get_f64("b"), Some(2.0));
    }

    #[test]
    fn resync_recovers_record_after_truncated_prefix() {
        // A record truncated mid-field, fused with a healthy one — the
        // exact shape a lost newline produces.
        let line = r#"{"tenant":"vm-0","acc{"tenant":"vm-1","access":1,"miss":2}"#;
        let segments = resync_line(line);
        assert_eq!(segments.len(), 2, "{segments:?}");
        assert!(matches!(&segments[0], Segment::Skipped { bytes: 21, .. }));
        match &segments[1] {
            Segment::Object(obj) => assert_eq!(obj.get_str("tenant"), Some("vm-1")),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn resync_recovers_multiple_fused_records() {
        let line = r#"{"a":1}{"b":2}garbage{"c":3}"#;
        let segments = resync_line(line);
        let objects: Vec<&JsonObject> = segments
            .iter()
            .filter_map(|s| match s {
                Segment::Object(o) => Some(o),
                Segment::Skipped { .. } => None,
            })
            .collect();
        assert_eq!(objects.len(), 3);
        let skipped = segments.len() - objects.len();
        assert_eq!(skipped, 1);
    }

    #[test]
    fn resync_on_hopeless_garbage_is_one_skip() {
        let segments = resync_line("%%% not json at all %%%");
        assert_eq!(segments.len(), 1);
        assert!(matches!(&segments[0], Segment::Skipped { .. }));
        assert!(resync_line("   ").is_empty());
    }

    #[test]
    fn decoder_reassembles_split_chunks() {
        let mut dec = Decoder::new();
        dec.push_bytes(b"{\"a\":1}\n{\"b\"");
        let first = dec.drain();
        assert_eq!(first.len(), 1);
        dec.push_bytes(b":2}\n");
        let second = dec.drain();
        assert_eq!(second.len(), 1);
        assert!(matches!(&second[0], Frame::Object(o) if o.get_f64("b") == Some(2.0)));
        assert!(dec.finish().is_empty());
        assert_eq!(dec.lines(), 2);
    }

    #[test]
    fn decoder_finish_flushes_unterminated_line() {
        let mut dec = Decoder::new();
        dec.push_bytes(b"{\"a\":1}");
        assert!(dec.drain().is_empty());
        let frames = dec.finish();
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Object(_)));
    }

    #[test]
    fn decoder_caps_oversized_lines() {
        let mut dec = Decoder::with_max_line(16);
        let long = vec![b'x'; 100];
        dec.push_bytes(&long);
        dec.push_bytes(b"\n{\"a\":1}\n");
        let frames = dec.drain();
        assert_eq!(frames.len(), 2, "{frames:?}");
        assert!(matches!(&frames[0], Frame::Skipped { reason, .. } if reason.contains("cap")));
        assert!(matches!(&frames[1], Frame::Object(_)));
    }

    #[test]
    fn integer_writers_match_display() {
        let mut out = String::new();
        for n in [0u64, 1, 9, 10, 99, 100, 12_345, u64::MAX, 10_u64.pow(19)] {
            out.clear();
            write_u64(&mut out, n);
            assert_eq!(out, format!("{n}"));
        }
        for n in [0i64, -1, 1, -42, i64::MIN, i64::MAX, 9_007_199_254_740_992] {
            out.clear();
            write_i64(&mut out, n);
            assert_eq!(out, format!("{n}"));
        }
    }

    #[test]
    fn write_f64_matches_to_line_rendering() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -17.0,
            1234.5,
            17.25,
            -0.5,
            1.0e-12,
            9.0e15,
            8.999e15,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let mut fast = String::new();
            write_f64(&mut fast, v);
            let mut obj = JsonObject::new();
            obj.push_num("v", v);
            assert_eq!(format!("{{\"v\":{fast}}}"), obj.to_line(), "value {v}");
        }
    }

    #[test]
    fn linebuf_matches_jsonobject_to_line() {
        let mut obj = JsonObject::new();
        obj.push_str("event", "verdict")
            .push_str("tenant", "vm-α \"quoted\"\n")
            .push_num("seq", 12_345.0)
            .push_num("score", -0.125)
            .push_bool("alarm", true);
        let mut buf = LineBuf::new();
        buf.begin();
        for (k, v) in obj.entries() {
            buf.field_value(k, v);
        }
        assert_eq!(buf.end(), obj.to_line());
        // The buffer is reusable and begin() resets the separator state.
        buf.begin().field_u64("seq", 7);
        assert_eq!(buf.end(), r#"{"seq":7}"#);
    }

    #[test]
    fn borrowed_parser_accepts_clean_records() {
        match parse_record_borrowed(r#"{"tenant":"vm-0","access":1234,"miss":56}"#) {
            RawParse::Record(RawRecord { tenant, kind: RawKind::Sample { access, miss } }) => {
                assert_eq!(tenant, "vm-0");
                assert_eq!(access, 1234.0);
                assert_eq!(miss, 56.0);
            }
            other => panic!("expected sample, got {other:?}"),
        }
        match parse_record_borrowed(r#" { "tenant" : "vm-1" , "ctl" : "close" } "#) {
            RawParse::Record(RawRecord { tenant, kind: RawKind::Close }) => {
                assert_eq!(tenant, "vm-1");
            }
            other => panic!("expected close, got {other:?}"),
        }
        // Extra fields are ignored; duplicate keys are first-wins.
        match parse_record_borrowed(r#"{"tenant":"a","access":1,"miss":2,"access":9,"x":true}"#) {
            RawParse::Record(RawRecord { kind: RawKind::Sample { access, .. }, .. }) => {
                assert_eq!(access, 1.0);
            }
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn borrowed_parser_rejects_with_the_slow_path_reason() {
        for (line, want) in [
            ("", RecordError::Syntax),
            ("nope", RecordError::Syntax),
            (r#"{"tenant":"a","access":1,"miss":2} x"#, RecordError::Syntax),
            (r#"{"tenant":{"a":1}}"#, RecordError::Syntax),
            ("{}", RecordError::MissingTenant),
            (r#"{"tenant":7,"access":1,"miss":2}"#, RecordError::MissingTenant),
            (r#"{"tenant":"","access":1,"miss":2}"#, RecordError::EmptyTenant),
            (r#"{"tenant":"a","ctl":7}"#, RecordError::CtlNotString),
            (r#"{"tenant":"a","ctl":"open"}"#, RecordError::UnknownCtl),
            (r#"{"tenant":"a"}"#, RecordError::MissingAccess),
            (r#"{"tenant":"a","access":1}"#, RecordError::MissingMiss),
            (r#"{"tenant":"a","access":1e999,"miss":2}"#, RecordError::NonFinite),
        ] {
            assert_eq!(
                parse_record_borrowed(line),
                RawParse::Reject(want),
                "line {line:?}"
            );
        }
    }

    #[test]
    fn borrowed_parser_falls_back_on_escapes_in_protocol_strings() {
        // Escaped key: could decode to a protocol field name.
        let escaped_key = "{\"\\u0074enant\":\"a\",\"access\":1,\"miss\":2}";
        assert_eq!(parse_record_borrowed(escaped_key), RawParse::Fallback);
        // Escaped tenant value: the span is not the decoded value.
        assert_eq!(
            parse_record_borrowed(r#"{"tenant":"a\nb","access":1,"miss":2}"#),
            RawParse::Fallback
        );
        // Escaped ctl verb.
        let escaped_ctl = "{\"tenant\":\"a\",\"ctl\":\"clos\\u0065\"}";
        assert_eq!(parse_record_borrowed(escaped_ctl), RawParse::Fallback);
        // Escapes in an *ignored* string value decide nothing — still a
        // clean record.
        assert!(matches!(
            parse_record_borrowed(r#"{"tenant":"a","note":"x\ty","access":1,"miss":2}"#),
            RawParse::Record(_)
        ));
        // A malformed escape is a syntax error, not a fallback.
        assert_eq!(
            parse_record_borrowed(r#"{"tenant":"a\qb","access":1,"miss":2}"#),
            RawParse::Reject(RecordError::Syntax)
        );
    }

    #[test]
    fn decoder_skips_invalid_utf8_and_resyncs() {
        let mut dec = Decoder::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(br#"{"a":1}"#);
        bytes.push(0xFF);
        bytes.extend_from_slice(br#"{"b":2}"#);
        bytes.push(b'\n');
        dec.push_bytes(&bytes);
        let frames = dec.drain();
        let objects = frames
            .iter()
            .filter(|f| matches!(f, Frame::Object(_)))
            .count();
        assert_eq!(objects, 2, "{frames:?}");
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Skipped { reason, .. } if reason.contains("UTF-8"))));
    }
}
