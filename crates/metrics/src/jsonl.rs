//! Hand-rolled line-delimited JSON (JSONL) codec.
//!
//! The engine's wire protocol is one flat JSON object per line: string,
//! integer/float and boolean values only — no nesting, no arrays. This
//! module supplies the std-only parse/serialize pair (the workspace has
//! no serde), sharing the report-writing philosophy of
//! [`crate::report`]: small, explicit, dependency-free.
//!
//! Serialization is deterministic: keys are emitted in insertion order,
//! floats through Rust's shortest-roundtrip `Display` (the same bytes on
//! every platform for the same bit pattern), and escaping covers exactly
//! `"`/`\\` plus control characters (as `\u00XX`). Parsing accepts the
//! standard JSON escapes and both integer and float notation.

use std::fmt::Write as _;

/// One scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (stored as `f64`; integers round-trip exactly up to
    /// 2^53).
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
}

impl JsonValue {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A flat JSON object with insertion-ordered keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a string field.
    pub fn push_str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Str(value.into())));
        self
    }

    /// Appends a numeric field.
    pub fn push_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Num(value)));
        self
    }

    /// Appends a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.entries.push((key.to_string(), JsonValue::Bool(value)));
        self
    }

    /// First value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String value under `key`, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Numeric value under `key`, if present and a number.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// All fields in insertion order.
    pub fn entries(&self) -> &[(String, JsonValue)] {
        &self.entries
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to one compact JSON line (no trailing newline).
    ///
    /// Non-finite numbers serialize as `null`-free `0` replacements are
    /// **not** applied here — they are the caller's bug; this codec
    /// emits them as `null` so a corrupt value is visible, not hidden.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(16 + 16 * self.entries.len());
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            match v {
                JsonValue::Str(s) => escape_into(&mut out, s),
                JsonValue::Num(n) => {
                    if n.is_finite() {
                        // Integers print without a fraction; everything
                        // else uses shortest-roundtrip formatting.
                        // lint:allow(float-eq) -- exact zero fraction selects integer formatting; near-integers must round-trip via {n}
                        if n.fract() == 0.0 && n.abs() < 9.0e15 {
                            let _ = write!(out, "{}", *n as i64);
                        } else {
                            let _ = write!(out, "{n}");
                        }
                    } else {
                        out.push_str("null");
                    }
                }
                JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line into a flat object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem: non-object
    /// lines, nested values, unterminated strings, bad escapes, or
    /// malformed numbers.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut parser = Parser { bytes: line.as_bytes(), pos: 0 };
        let obj = parser.parse_object()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.pos));
        }
        Ok(obj)
    }

    /// Parses one object from the front of `text`, returning it together
    /// with the number of bytes consumed. Unlike [`JsonObject::parse`],
    /// trailing content after the closing `}` is allowed — this is the
    /// building block of [`resync_line`], which recovers records from
    /// lines where a corrupted record and a valid one were fused.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse_prefix(text: &str) -> Result<(Self, usize), String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let obj = parser.parse_object()?;
        Ok((obj, parser.pos))
    }
}

/// One segment of a dirty input line, in line order: either a recovered
/// object or a span of bytes the decoder had to skip to resynchronise.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A valid flat object recovered from the line.
    Object(JsonObject),
    /// Bytes skipped while hunting for the next parsable record.
    Skipped {
        /// Number of bytes the span covers.
        bytes: usize,
        /// Why the span failed to parse (first failure in the span).
        reason: String,
    },
}

/// Scans a line that failed (or may fail) to parse as a single object
/// and recovers every embedded valid record, resynchronising past
/// corrupted spans.
///
/// The scanner walks the line left to right: at each `{` it attempts a
/// prefix parse ([`JsonObject::parse_prefix`]); on success the object is
/// emitted and scanning resumes after it, on failure the next `{` is
/// tried. Bytes not covered by a recovered object are reported as
/// [`Segment::Skipped`] spans carrying the first parse failure seen in
/// the span, so a truncated record fused with a healthy one
/// (`{"a":1,"b{"tenant":...}`) loses only the corrupted prefix.
///
/// Whitespace-only residue is not reported. The scan is linear in the
/// number of `{` candidates; callers bounding line length (see
/// [`Decoder`]) bound its cost.
pub fn resync_line(line: &str) -> Vec<Segment> {
    let mut segments = Vec::new();
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    // Start of the current unconsumed (potentially skipped) span, plus
    // the first parse failure inside it.
    let mut skip_from = 0usize;
    let mut skip_reason: Option<String> = None;
    let flush_skip = |segments: &mut Vec<Segment>,
                          from: usize,
                          to: usize,
                          reason: &mut Option<String>| {
        let span = line.get(from..to).unwrap_or("");
        if !span.trim().is_empty() {
            segments.push(Segment::Skipped {
                bytes: to - from,
                reason: reason
                    .take()
                    .unwrap_or_else(|| "no object found".to_string()),
            });
        }
        *reason = None;
    };
    while pos < bytes.len() {
        let Some(off) = line.get(pos..).and_then(|rest| rest.find('{')) else {
            break;
        };
        let brace = pos + off;
        match line.get(brace..).map(JsonObject::parse_prefix) {
            Some(Ok((obj, consumed))) => {
                flush_skip(&mut segments, skip_from, brace, &mut skip_reason);
                segments.push(Segment::Object(obj));
                pos = brace + consumed;
                skip_from = pos;
            }
            Some(Err(reason)) => {
                if skip_reason.is_none() {
                    skip_reason = Some(reason);
                }
                pos = brace + 1;
            }
            None => break,
        }
    }
    flush_skip(&mut segments, skip_from, bytes.len(), &mut skip_reason);
    segments
}

/// One decoded frame from a [`Decoder`]: a record or a skipped span.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A valid flat object.
    Object(JsonObject),
    /// Bytes the decoder skipped to resynchronise (corruption, oversized
    /// lines, invalid UTF-8).
    Skipped {
        /// Number of bytes the span covers.
        bytes: usize,
        /// Why the span was skipped.
        reason: String,
    },
}

/// Incremental byte-stream JSONL decoder with resynchronisation and
/// bounded buffering.
///
/// Feed arbitrary byte chunks with [`Decoder::push_bytes`] and drain
/// complete frames with [`Decoder::drain`]; call [`Decoder::finish`] at
/// end of stream for the trailing unterminated line. The decoder never
/// panics on any input and always resynchronises to the next valid
/// record:
///
/// * lines longer than `max_line` bytes are discarded wholesale (one
///   `Skipped` frame), so a stream that stops sending newlines cannot
///   grow the buffer without bound;
/// * invalid UTF-8 splits the line — the valid prefix is scanned for
///   records, the offending bytes are skipped, and scanning resumes
///   after them;
/// * within a (UTF-8-valid) line, [`resync_line`] recovers every
///   embedded record around corrupted spans.
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    max_line: usize,
    /// In discard mode (oversized line): bytes thrown away so far.
    discarding: Option<u64>,
    frames: Vec<Frame>,
    lines: u64,
    /// Objects recovered by resynchronisation from dirty lines (lines
    /// that did not parse cleanly as exactly one object).
    resynced: u64,
}

/// Default per-line byte cap for [`Decoder::new`].
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

impl Decoder {
    /// A decoder with the [`DEFAULT_MAX_LINE`] line cap.
    pub fn new() -> Self {
        Decoder::with_max_line(DEFAULT_MAX_LINE)
    }

    /// A decoder with a custom per-line byte cap (minimum 16).
    pub fn with_max_line(max_line: usize) -> Self {
        Decoder {
            buf: Vec::new(),
            max_line: max_line.max(16),
            discarding: None,
            frames: Vec::new(),
            lines: 0,
            resynced: 0,
        }
    }

    /// Number of physical lines (newline-terminated or final partial)
    /// consumed so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Objects recovered by resynchronisation from dirty lines so far
    /// (a clean one-object line does not count).
    pub fn resynced(&self) -> u64 {
        self.resynced
    }

    /// Feeds one chunk of the stream into the decoder.
    pub fn push_bytes(&mut self, chunk: &[u8]) {
        for &b in chunk {
            if let Some(dropped) = self.discarding.as_mut() {
                if b == b'\n' {
                    let total = *dropped;
                    self.discarding = None;
                    self.lines += 1;
                    self.frames.push(Frame::Skipped {
                        bytes: total as usize,
                        reason: format!(
                            "line exceeds the {}-byte cap",
                            self.max_line
                        ),
                    });
                } else {
                    *dropped += 1;
                }
                continue;
            }
            if b == b'\n' {
                self.lines += 1;
                let line = std::mem::take(&mut self.buf);
                self.decode_line(&line);
            } else {
                self.buf.push(b);
                if self.buf.len() > self.max_line {
                    self.discarding = Some(self.buf.len() as u64);
                    self.buf.clear();
                }
            }
        }
    }

    /// Takes every frame decoded so far.
    pub fn drain(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.frames)
    }

    /// Flushes the trailing unterminated line (end of stream) and takes
    /// the remaining frames.
    pub fn finish(&mut self) -> Vec<Frame> {
        if let Some(dropped) = self.discarding.take() {
            self.lines += 1;
            self.frames.push(Frame::Skipped {
                bytes: dropped as usize,
                reason: format!("line exceeds the {}-byte cap", self.max_line),
            });
        } else if !self.buf.is_empty() {
            self.lines += 1;
            let line = std::mem::take(&mut self.buf);
            self.decode_line(&line);
        }
        self.drain()
    }

    /// Decodes one complete physical line (no trailing newline) into
    /// frames, splitting around invalid UTF-8.
    fn decode_line(&mut self, line: &[u8]) {
        let mut rest = line;
        loop {
            match std::str::from_utf8(rest) {
                Ok(text) => {
                    self.scan_text(text);
                    return;
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    if let Some(prefix) =
                        rest.get(..valid).and_then(|p| std::str::from_utf8(p).ok())
                    {
                        self.scan_text(prefix);
                    }
                    let bad = e.error_len().unwrap_or(rest.len() - valid).max(1);
                    self.frames.push(Frame::Skipped {
                        bytes: bad,
                        reason: "invalid UTF-8".to_string(),
                    });
                    let next = (valid + bad).min(rest.len());
                    rest = rest.get(next..).unwrap_or(&[]);
                    if rest.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    fn scan_text(&mut self, text: &str) {
        if text.trim().is_empty() {
            return;
        }
        // Fast path: the common case of one clean object per line.
        if let Ok(obj) = JsonObject::parse(text) {
            self.frames.push(Frame::Object(obj));
            return;
        }
        for segment in resync_line(text) {
            self.frames.push(match segment {
                Segment::Object(obj) => {
                    self.resynced += 1;
                    Frame::Object(obj)
                }
                Segment::Skipped { bytes, reason } => {
                    Frame::Skipped { bytes, reason }
                }
            });
        }
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of line", b as char)),
        }
    }

    fn parse_object(&mut self) -> Result<JsonObject, String> {
        self.skip_ws();
        self.expect_byte(b'{')?;
        let mut obj = JsonObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            obj.entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(obj),
                Some(b) => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos - 1,
                        b as char
                    ))
                }
                None => return Err("unterminated object".to_string()),
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'{' | b'[') => Err(format!(
                "nested values are not part of the protocol (byte {})",
                self.pos
            )),
            Some(_) => self.parse_number(),
            None => Err("expected a value at end of line".to_string()),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("malformed keyword at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are outside the protocol's
                        // character set; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(c);
                        self.pos = end;
                    }
                    Some(b) => return Err(format!("bad escape '\\{}'", b as char)),
                    None => return Err("unterminated escape".to_string()),
                },
                Some(b) if b < 0x20 => {
                    return Err("raw control character in string".to_string())
                }
                Some(_) => {
                    // Re-scan from the byte we consumed to keep UTF-8
                    // sequences intact.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8 in number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_typical_sample_line() {
        let mut obj = JsonObject::new();
        obj.push_str("tenant", "vm-0").push_num("access", 1234.0).push_num("miss", 56.0);
        let line = obj.to_line();
        assert_eq!(line, r#"{"tenant":"vm-0","access":1234,"miss":56}"#);
        let back = JsonObject::parse(&line).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn roundtrips_floats_and_bools() {
        let mut obj = JsonObject::new();
        obj.push_num("period", 17.25).push_bool("periodic", true).push_num("neg", -0.5);
        let back = JsonObject::parse(&obj.to_line()).unwrap();
        assert_eq!(back.get_f64("period"), Some(17.25));
        assert_eq!(back.get("periodic").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(back.get_f64("neg"), Some(-0.5));
    }

    #[test]
    fn escapes_are_symmetric() {
        let mut obj = JsonObject::new();
        obj.push_str("name", "a\"b\\c\nd\te\u{1}");
        let line = obj.to_line();
        let back = JsonObject::parse(&line).unwrap();
        assert_eq!(back.get_str("name"), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_whitespace_and_scientific_notation() {
        let obj = JsonObject::parse(r#" { "a" : 1e3 , "b" : "x" } "#).unwrap();
        assert_eq!(obj.get_f64("a"), Some(1000.0));
        assert_eq!(obj.get_str("b"), Some("x"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(JsonObject::parse("").is_err());
        assert!(JsonObject::parse("[1,2]").is_err());
        assert!(JsonObject::parse(r#"{"a":}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":1"#).is_err());
        assert!(JsonObject::parse(r#"{"a":{"b":1}}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":1} trailing"#).is_err());
        assert!(JsonObject::parse(r#"{"a":"unterminated}"#).is_err());
        assert!(JsonObject::parse(r#"{"a":nope}"#).is_err());
    }

    #[test]
    fn empty_object_roundtrips() {
        let obj = JsonObject::parse("{}").unwrap();
        assert!(obj.is_empty());
        assert_eq!(obj.to_line(), "{}");
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let mut obj = JsonObject::new();
        obj.push_num("bad", f64::NAN);
        assert_eq!(obj.to_line(), r#"{"bad":null}"#);
    }

    #[test]
    fn unicode_content_roundtrips() {
        let mut obj = JsonObject::new();
        obj.push_str("name", "tenant-α-β");
        let back = JsonObject::parse(&obj.to_line()).unwrap();
        assert_eq!(back.get_str("name"), Some("tenant-α-β"));
    }

    #[test]
    fn parse_prefix_reports_consumed_bytes() {
        let text = r#"{"a":1} {"b":2}"#;
        let (obj, consumed) = JsonObject::parse_prefix(text).unwrap();
        assert_eq!(obj.get_f64("a"), Some(1.0));
        assert_eq!(consumed, 7);
        let (obj2, _) = JsonObject::parse_prefix(&text[consumed..]).unwrap();
        assert_eq!(obj2.get_f64("b"), Some(2.0));
    }

    #[test]
    fn resync_recovers_record_after_truncated_prefix() {
        // A record truncated mid-field, fused with a healthy one — the
        // exact shape a lost newline produces.
        let line = r#"{"tenant":"vm-0","acc{"tenant":"vm-1","access":1,"miss":2}"#;
        let segments = resync_line(line);
        assert_eq!(segments.len(), 2, "{segments:?}");
        assert!(matches!(&segments[0], Segment::Skipped { bytes: 21, .. }));
        match &segments[1] {
            Segment::Object(obj) => assert_eq!(obj.get_str("tenant"), Some("vm-1")),
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn resync_recovers_multiple_fused_records() {
        let line = r#"{"a":1}{"b":2}garbage{"c":3}"#;
        let segments = resync_line(line);
        let objects: Vec<&JsonObject> = segments
            .iter()
            .filter_map(|s| match s {
                Segment::Object(o) => Some(o),
                Segment::Skipped { .. } => None,
            })
            .collect();
        assert_eq!(objects.len(), 3);
        let skipped = segments.len() - objects.len();
        assert_eq!(skipped, 1);
    }

    #[test]
    fn resync_on_hopeless_garbage_is_one_skip() {
        let segments = resync_line("%%% not json at all %%%");
        assert_eq!(segments.len(), 1);
        assert!(matches!(&segments[0], Segment::Skipped { .. }));
        assert!(resync_line("   ").is_empty());
    }

    #[test]
    fn decoder_reassembles_split_chunks() {
        let mut dec = Decoder::new();
        dec.push_bytes(b"{\"a\":1}\n{\"b\"");
        let first = dec.drain();
        assert_eq!(first.len(), 1);
        dec.push_bytes(b":2}\n");
        let second = dec.drain();
        assert_eq!(second.len(), 1);
        assert!(matches!(&second[0], Frame::Object(o) if o.get_f64("b") == Some(2.0)));
        assert!(dec.finish().is_empty());
        assert_eq!(dec.lines(), 2);
    }

    #[test]
    fn decoder_finish_flushes_unterminated_line() {
        let mut dec = Decoder::new();
        dec.push_bytes(b"{\"a\":1}");
        assert!(dec.drain().is_empty());
        let frames = dec.finish();
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Object(_)));
    }

    #[test]
    fn decoder_caps_oversized_lines() {
        let mut dec = Decoder::with_max_line(16);
        let long = vec![b'x'; 100];
        dec.push_bytes(&long);
        dec.push_bytes(b"\n{\"a\":1}\n");
        let frames = dec.drain();
        assert_eq!(frames.len(), 2, "{frames:?}");
        assert!(matches!(&frames[0], Frame::Skipped { reason, .. } if reason.contains("cap")));
        assert!(matches!(&frames[1], Frame::Object(_)));
    }

    #[test]
    fn decoder_skips_invalid_utf8_and_resyncs() {
        let mut dec = Decoder::new();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(br#"{"a":1}"#);
        bytes.push(0xFF);
        bytes.extend_from_slice(br#"{"b":2}"#);
        bytes.push(b'\n');
        dec.push_bytes(&bytes);
        let frames = dec.drain();
        let objects = frames
            .iter()
            .filter(|f| matches!(f, Frame::Object(_)))
            .count();
        assert_eq!(objects, 2, "{frames:?}");
        assert!(frames
            .iter()
            .any(|f| matches!(f, Frame::Skipped { reason, .. } if reason.contains("UTF-8"))));
    }
}
