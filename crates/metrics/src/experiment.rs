//! The three-stage experiment protocol (§5.1).
//!
//! "We deployed a victim VM and 8 other VMs to share the resources on the
//! server. Among these 8 VMs, one of them was the attack VM ... and the
//! other 7 VMs were all benign VMs that ran normal Linux utilities ...
//! We first generated the profile of an application without attack ...
//! (Stage 1). Later we ran each application ... During the first [stage]
//! we did not launch any attacks (Stage 2). During the last [stage], we
//! performed the bus locking attack or LLC cleansing attack from the
//! attack VM (Stage 3)."

use memdos_attacks::schedule::Scheduled;
use memdos_attacks::AttackKind;
use memdos_core::config::{KsTestParams, SdsParams};
use memdos_core::detector::{Detector, Observation, ThrottleRequest};
use memdos_core::kstest::KsTestDetector;
use memdos_core::profile::{Profile, Profiler, ProfilerConfig};
use memdos_core::sds::Sds;
use memdos_core::sdsp::SdsP;
use memdos_core::CoreError;
use memdos_sim::program::VmProgram;
use memdos_sim::server::{Server, ServerConfig};
use memdos_sim::VmId;
use memdos_workloads::catalog::Application;

use crate::accuracy;
use crate::delay;

/// A detection scheme under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The combined SDS (SDS/B, plus SDS/P agreement for periodic apps).
    Sds,
    /// The boundary scheme alone.
    SdsB,
    /// The period scheme alone (periodic applications only).
    SdsP,
    /// The KStest baseline.
    KsTest,
}

impl Scheme {
    /// All schemes, in the paper's figure order.
    pub const ALL: [Scheme; 4] = [Scheme::Sds, Scheme::SdsB, Scheme::SdsP, Scheme::KsTest];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Sds => "SDS",
            Scheme::SdsB => "SDS/B",
            Scheme::SdsP => "SDS/P",
            Scheme::KsTest => "KStest",
        }
    }

    /// Whether the scheme only observes (no throttling).
    pub fn is_passive(&self) -> bool {
        !matches!(self, Scheme::KsTest)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Stage lengths and evaluation granularity, in ticks (1 tick = `T_PCM`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageConfig {
    /// Stage 1: profiling window.
    pub profile_ticks: u64,
    /// Stage 2: benign monitoring window.
    pub benign_ticks: u64,
    /// Stage 3: attack window.
    pub attack_ticks: u64,
    /// Decision-interval length for recall/specificity.
    pub interval_ticks: u64,
    /// Recall grace period after attack launch (§ accuracy docs).
    pub grace_ticks: u64,
}

impl StageConfig {
    /// Compact stages for tests: 40 s profile, 60 s benign, 60 s attack.
    pub fn quick() -> Self {
        StageConfig {
            profile_ticks: 4_000,
            benign_ticks: 6_000,
            attack_ticks: 6_000,
            interval_ticks: 1_000,
            grace_ticks: 3_500,
        }
    }

    /// Default bench scale: 120 s profile, 120 s + 120 s stages. The
    /// profile must span at least one full cycle of the longest-phased
    /// application (TeraSort's map→shuffle→sort→reduce job ≈ 70 s).
    pub fn standard() -> Self {
        StageConfig {
            profile_ticks: 12_000,
            benign_ticks: 12_000,
            attack_ticks: 12_000,
            interval_ticks: 1_000,
            grace_ticks: 6_000,
        }
    }

    /// The paper's scale: 300 s + 300 s stages (§5.1).
    pub fn paper() -> Self {
        StageConfig {
            profile_ticks: 15_000,
            benign_ticks: 30_000,
            attack_ticks: 30_000,
            interval_ticks: 1_000,
            grace_ticks: 6_000,
        }
    }

    /// Tick at which the attack launches (absolute).
    pub fn attack_start(&self) -> u64 {
        self.profile_ticks + self.benign_ticks
    }

    /// Total run length in ticks.
    pub fn total_ticks(&self) -> u64 {
        self.profile_ticks + self.benign_ticks + self.attack_ticks
    }
}

impl Default for StageConfig {
    fn default() -> Self {
        StageConfig::standard()
    }
}

/// Full configuration of one accuracy/delay experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The protected application.
    pub app: Application,
    /// The attack launched in Stage 3.
    pub attack: AttackKind,
    /// Stage lengths.
    pub stages: StageConfig,
    /// Simulated server parameters.
    pub server: ServerConfig,
    /// Number of benign utility VMs (the paper uses 7).
    pub utility_vms: usize,
    /// SDS parameters (Table 1 defaults).
    pub sds_params: SdsParams,
    /// KStest parameters (§3.2 defaults).
    pub ks_params: KsTestParams,
    /// Base seed; run `r` uses a seed derived from it.
    pub seed: u64,
    /// Per-tick monitoring cycle tax while SDS-family schemes run.
    pub sds_tax_cycles: u64,
    /// Per-tick monitoring cycle tax while KStest runs (KS computation +
    /// PCM; its throttling cost is on top, emerging from the protocol).
    pub ks_tax_cycles: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            app: Application::KMeans,
            attack: AttackKind::BusLocking,
            stages: StageConfig::standard(),
            server: ServerConfig::default(),
            utility_vms: 7,
            sds_params: SdsParams::default(),
            ks_params: KsTestParams::default(),
            seed: 0xD05,
            sds_tax_cycles: 2_500,
            ks_tax_cycles: 2_000,
        }
    }
}

/// The alarm timeline and events of one scheme on one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scheme evaluated.
    pub scheme: Scheme,
    /// Per-tick alarm state over stages 2+3 (index 0 = first benign
    /// tick).
    pub alarm: Vec<bool>,
    /// Alarm activation events, as tick offsets into `alarm`.
    pub activations: Vec<u64>,
    /// Whether Stage 1 classified the application as periodic.
    pub profile_periodic: bool,
}

/// Scalar metrics derived from one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Recall over attack-stage decision intervals.
    pub recall: f64,
    /// Specificity over benign-stage decision intervals.
    pub specificity: f64,
    /// Detection delay in seconds; `None` when never detected.
    pub delay_secs: Option<f64>,
}

impl RunOutcome {
    /// Evaluates the run against the stage layout it was produced with.
    pub fn metrics(&self, stages: &StageConfig) -> RunMetrics {
        self.metrics_with_t_pcm(stages, 0.01)
    }

    /// Evaluates with an explicit `T_PCM` (seconds per tick).
    pub fn metrics_with_t_pcm(&self, stages: &StageConfig, t_pcm: f64) -> RunMetrics {
        let benign = stages.benign_ticks as usize;
        let (stage2, stage3) = self.alarm.split_at(benign.min(self.alarm.len()));
        RunMetrics {
            recall: accuracy::recall(stage3, stages.interval_ticks, stages.grace_ticks),
            specificity: accuracy::specificity(stage2, stages.interval_ticks),
            delay_secs: delay::detection_delay_ticks(&self.alarm, benign)
                .map(|t| delay::ticks_to_secs(t, t_pcm)),
        }
    }
}

impl ExperimentConfig {
    /// Seed for run index `r` (split so that every run is independent
    /// but reproducible). Depends only on `(self.seed, run)` — never on
    /// execution order — so the parallel runner reproduces sequential
    /// results bit-for-bit.
    pub fn run_seed(&self, run: u64) -> u64 {
        memdos_stats::rng::derive_seed(self.seed, run)
    }

    /// Builds the populated server for one run: victim + scheduled
    /// attacker + utilities. Returns the server and the victim's id.
    pub fn build_server(&self, run: u64) -> (Server, VmId) {
        let (server, victim, _) = self.build_server_with_attacker(run);
        (server, victim)
    }

    /// [`ExperimentConfig::build_server`], additionally returning the
    /// attacker's id — fork flows need the handle to re-target the
    /// parked attack VM's payload.
    pub fn build_server_with_attacker(&self, run: u64) -> (Server, VmId, VmId) {
        let server_cfg = ServerConfig { seed: self.run_seed(run), ..self.server };
        let mut server = Server::new(server_cfg);
        let llc = server.config().geometry.lines() as u64;
        let geometry = server.config().geometry;
        let victim = server.add_vm(self.app.name(), self.app.build(llc));
        // The attacker's thread pool spins up with the attack window:
        // before `attack_start` the parked VM runs serially, so the
        // pre-launch trace is independent of which payload (and thread
        // count) Stage 3 will launch — the invariant behind
        // [`ExperimentConfig::capture_attack_sweep`]'s shared prefix.
        let attacker = server.add_vm_parallel_from(
            "attacker",
            Box::new(Scheduled::starting_at(
                self.stages.attack_start(),
                self.attack.build(geometry),
            )),
            self.attack.default_parallelism(),
            self.stages.attack_start(),
        );
        for i in 0..self.utility_vms {
            server.add_vm(
                format!("util-{i}"),
                Box::new(memdos_workloads::apps::utility::program(i as u64)),
            );
        }
        (server, victim, attacker)
    }

    /// Runs Stage 1 on `server`, returning the victim's profile.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::InsufficientProfile`] for stage configs too
    /// short to profile.
    pub fn run_profile_stage(
        &self,
        server: &mut Server,
        victim: VmId,
    ) -> Result<Profile, CoreError> {
        let mut profiler = Profiler::new(ProfilerConfig {
            sds: self.sds_params,
            ..ProfilerConfig::default()
        })?;
        for _ in 0..self.stages.profile_ticks {
            let report = server.tick();
            let sample = report.sample(victim).ok_or(CoreError::MissingSample { vm: victim })?;
            profiler.observe(Observation::from(sample));
        }
        profiler.finish()
    }

    /// Runs the complete three-stage protocol for one scheme.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotPeriodic`] when `scheme` is
    /// [`Scheme::SdsP`] but the profile is not periodic, and propagates
    /// profiling/construction errors.
    pub fn run_scheme(&self, scheme: Scheme, run: u64) -> Result<RunOutcome, CoreError> {
        let (mut server, victim) = self.build_server(run);
        let tax = if scheme.is_passive() { self.sds_tax_cycles } else { self.ks_tax_cycles };
        server.set_monitor_tax(tax);

        let profile = self.run_profile_stage(&mut server, victim)?;
        let mut detector: Box<dyn Detector> = match scheme {
            Scheme::Sds => Box::new(Sds::from_profile(&profile, &self.sds_params)?),
            Scheme::SdsB => {
                let mut boundary_only = profile.clone();
                boundary_only.periodicity = None;
                Box::new(Sds::from_profile(&boundary_only, &self.sds_params)?)
            }
            Scheme::SdsP => Box::new(SdsP::from_profile(&profile, &self.sds_params.sdsp)?),
            Scheme::KsTest => Box::new(KsTestDetector::new(self.ks_params)?),
        };

        let monitored = self.stages.benign_ticks + self.stages.attack_ticks;
        let mut alarm = Vec::with_capacity(monitored as usize);
        let mut activations = Vec::new();
        for t in 0..monitored {
            let report = server.tick();
            let obs = Observation::from(report.sample(victim).ok_or(CoreError::MissingSample { vm: victim })?);
            let step = detector.on_observation(obs);
            match step.throttle {
                Some(ThrottleRequest::PauseOthers) => server.pause_all_except(victim),
                Some(ThrottleRequest::ResumeAll) => server.resume_all(),
                None => {}
            }
            if step.became_active {
                activations.push(t);
            }
            alarm.push(detector.alarm_active());
        }
        Ok(RunOutcome {
            scheme,
            alarm,
            activations,
            profile_periodic: profile.is_periodic(),
        })
    }

    /// Runs all passive schemes plus KStest for run `run`, reusing one
    /// server execution for the passive schemes. Schemes inapplicable to
    /// the workload (SDS/P on a non-periodic profile) are omitted.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors.
    pub fn run_all_schemes(&self, run: u64) -> Result<Vec<RunOutcome>, CoreError> {
        // Passive schemes share one server execution.
        let (mut server, victim) = self.build_server(run);
        server.set_monitor_tax(self.sds_tax_cycles);
        let profile = self.run_profile_stage(&mut server, victim)?;

        let mut passive: Vec<(Scheme, Box<dyn Detector>)> = Vec::new();
        passive.push((
            Scheme::Sds,
            Box::new(Sds::from_profile(&profile, &self.sds_params)?),
        ));
        {
            let mut boundary_only = profile.clone();
            boundary_only.periodicity = None;
            passive.push((
                Scheme::SdsB,
                Box::new(Sds::from_profile(&boundary_only, &self.sds_params)?),
            ));
        }
        if profile.is_periodic() {
            passive.push((
                Scheme::SdsP,
                Box::new(SdsP::from_profile(&profile, &self.sds_params.sdsp)?),
            ));
        }

        let monitored = self.stages.benign_ticks + self.stages.attack_ticks;
        let mut outcomes: Vec<RunOutcome> = passive
            .iter()
            .map(|(s, _)| RunOutcome {
                scheme: *s,
                alarm: Vec::with_capacity(monitored as usize),
                activations: Vec::new(),
                profile_periodic: profile.is_periodic(),
            })
            .collect();
        for t in 0..monitored {
            let report = server.tick();
            let obs = Observation::from(report.sample(victim).ok_or(CoreError::MissingSample { vm: victim })?);
            for ((_, det), out) in passive.iter_mut().zip(&mut outcomes) {
                let step = det.on_observation(obs);
                if step.became_active {
                    out.activations.push(t);
                }
                out.alarm.push(det.alarm_active());
            }
        }

        // KStest drives its own server (it throttles).
        outcomes.push(self.run_scheme(Scheme::KsTest, run)?);
        Ok(outcomes)
    }
}

/// A fully captured victim observation stream for one run, covering all
/// three stages. Passive schemes (SDS, SDS/B, SDS/P) can be *replayed*
/// over it with arbitrary parameters without re-simulating the server —
/// the sensitivity studies (Figs. 13–18) sweep six parameters over the
/// same captured runs this way.
#[derive(Debug, Clone)]
pub struct CapturedRun {
    /// Stage layout the capture was produced with.
    pub stages: StageConfig,
    /// One observation per tick, stages 1–3 back to back.
    pub observations: Vec<Observation>,
}

impl CapturedRun {
    /// Recomputes the Stage-1 profile with explicit SDS parameters (the
    /// profile's `μ_E`/`σ_E` depend on the smoothing parameters, so every
    /// sensitivity point needs its own profile pass).
    ///
    /// # Errors
    ///
    /// Propagates profiling errors.
    pub fn profile_with(&self, params: &SdsParams) -> Result<Profile, CoreError> {
        let mut profiler = Profiler::new(ProfilerConfig {
            sds: *params,
            ..ProfilerConfig::default()
        })?;
        for obs in &self.observations[..self.stages.profile_ticks as usize] {
            profiler.observe(*obs);
        }
        profiler.finish()
    }

    /// Replays stages 2+3 through a passive detector built by `make`
    /// from the (re-profiled) Stage-1 profile.
    ///
    /// # Errors
    ///
    /// Propagates profiling and detector-construction errors.
    pub fn replay_passive<D: Detector>(
        &self,
        scheme: Scheme,
        params: &SdsParams,
        make: impl FnOnce(&Profile) -> Result<D, CoreError>,
    ) -> Result<RunOutcome, CoreError> {
        let profile = self.profile_with(params)?;
        let mut detector = make(&profile)?;
        let monitored = &self.observations[self.stages.profile_ticks as usize..];
        let mut alarm = Vec::with_capacity(monitored.len());
        let mut activations = Vec::new();
        for (t, obs) in monitored.iter().enumerate() {
            let step = detector.on_observation(*obs);
            if step.became_active {
                activations.push(t as u64);
            }
            alarm.push(detector.alarm_active());
        }
        Ok(RunOutcome {
            scheme,
            alarm,
            activations,
            profile_periodic: profile.is_periodic(),
        })
    }

    /// Replays the combined SDS with the given parameters.
    ///
    /// # Errors
    ///
    /// Propagates profiling and construction errors.
    pub fn replay_sds(&self, params: &SdsParams) -> Result<RunOutcome, CoreError> {
        self.replay_passive(Scheme::Sds, params, |p| Sds::from_profile(p, params))
    }

    /// Replays SDS/P alone with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotPeriodic`] on a non-periodic profile.
    pub fn replay_sdsp(&self, params: &SdsParams) -> Result<RunOutcome, CoreError> {
        self.replay_passive(Scheme::SdsP, params, |p| {
            SdsP::from_profile(p, &params.sdsp)
        })
    }
}

impl ExperimentConfig {
    /// Runs the full three-stage simulation once with no detector in the
    /// loop (SDS monitoring tax applied) and captures the victim's
    /// observation stream for later replay.
    pub fn capture_run(&self, run: u64) -> CapturedRun {
        let (mut server, victim) = self.build_server(run);
        server.set_monitor_tax(self.sds_tax_cycles);
        let total = self.stages.total_ticks();
        let observations = (0..total)
            .map(|_| {
                let report = server.tick();
                // lint:allow(panic) -- `victim` was registered by
                // build_server above; a missing sample is a simulator bug.
                Observation::from(report.sample(victim).expect("victim sample"))
            })
            .collect();
        CapturedRun { stages: self.stages, observations }
    }

    /// Captures one run per attack in `attacks`, sharing the stage-1/2
    /// simulation prefix across all of them.
    ///
    /// The attacker VM is parked (and serial — see
    /// [`ExperimentConfig::build_server_with_attacker`]) until
    /// `stages.attack_start()`, so every tick before that point is
    /// independent of which payload stage 3 will launch. The sweep
    /// exploits that: it simulates the prefix **once**, then forks the
    /// server per attack, swaps the parked attacker's payload and thread
    /// count in place, and simulates only the attack stage. Output is
    /// byte-identical to calling [`ExperimentConfig::capture_run`] once
    /// per attack (pinned by `capture_sweep_matches_per_attack_runs`),
    /// at roughly `prefix/total` less simulation per extra attack.
    ///
    /// `self.attack` is ignored; results follow `attacks` order.
    pub fn capture_attack_sweep(&self, attacks: &[AttackKind], run: u64) -> Vec<CapturedRun> {
        if attacks.is_empty() {
            return Vec::new();
        }
        let (mut server, victim, attacker) = self.build_server_with_attacker(run);
        server.set_monitor_tax(self.sds_tax_cycles);
        let geometry = server.config().geometry;
        let prefix_ticks = self.stages.attack_start();
        let suffix_ticks = self.stages.total_ticks() - prefix_ticks;
        let prefix: Vec<Observation> = (0..prefix_ticks)
            .map(|_| {
                let report = server.tick();
                // lint:allow(panic) -- `victim` was registered by
                // build_server above; a missing sample is a simulator bug.
                Observation::from(report.sample(victim).expect("victim sample"))
            })
            .collect();

        let mut out = Vec::with_capacity(attacks.len());
        let mut warm = Some(server);
        for (k, &attack) in attacks.iter().enumerate() {
            // lint:allow(panic) -- `warm` is refilled on every iteration
            // but the last, which consumes it.
            let base = warm.take().expect("warm prefix server");
            let mut fork = if k + 1 < attacks.len() {
                // lint:allow(panic) -- every program build_server installs
                // (PhaseMachine, Scheduled, the attack payloads) supports
                // clone_box; a None here is a regression in one of them.
                let fork = base.try_clone().expect("experiment programs are cloneable");
                warm = Some(base);
                fork
            } else {
                base
            };

            // Re-target the parked attacker: swap the payload and its
            // thread count. The parked path never touched the old
            // payload, and the serial window covers the whole prefix, so
            // the continuation matches a from-scratch run of `attack`.
            let scheduled = fork
                .program_mut(attacker)
                .and_then(|p| p.as_any_mut())
                .and_then(|a| a.downcast_mut::<Scheduled<Box<dyn VmProgram>>>());
            // lint:allow(panic) -- build_server installs exactly this
            // wrapper type around the attacker.
            scheduled.expect("attacker is Scheduled").swap_inner(attack.build(geometry));
            fork.set_vm_parallelism(attacker, attack.default_parallelism());

            let mut observations = prefix.clone();
            observations.extend((0..suffix_ticks).map(|_| {
                let report = fork.tick();
                // lint:allow(panic) -- same victim registration argument
                // as above.
                Observation::from(report.sample(victim).expect("victim sample"))
            }));
            out.push(CapturedRun { stages: self.stages, observations });
        }
        out
    }
}

/// Captures the raw `(AccessNum, MissNum)` trace of the victim for the
/// measurement-study figures (Figs. 2–6): `pre_ticks` benign, then the
/// attack runs for `post_ticks`.
pub fn capture_trace(
    app: Application,
    attack: AttackKind,
    pre_ticks: u64,
    post_ticks: u64,
    seed: u64,
) -> Vec<(f64, f64)> {
    let cfg = ExperimentConfig {
        app,
        attack,
        stages: StageConfig {
            profile_ticks: 0,
            benign_ticks: pre_ticks,
            attack_ticks: post_ticks,
            interval_ticks: 1_000,
            grace_ticks: 0,
        },
        seed,
        ..ExperimentConfig::default()
    };
    let (mut server, victim) = cfg.build_server(0);
    (0..pre_ticks + post_ticks)
        .map(|_| {
            let r = server.tick();
            // lint:allow(panic) -- `victim` was registered by build_server
            // above; a missing sample is a simulator bug.
            let s = r.sample(victim).expect("victim sample");
            (s.accesses as f64, s.misses as f64)
        })
        .collect()
}

/// One KS round outcome in a benign-only KStest run (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KsRound {
    /// Tick at which the round's test completed.
    pub tick: u64,
    /// 1 = "distinct probability distributions" in the paper's plots.
    pub rejected: bool,
}

/// Runs KStest on a benign (attack-free) workload and reports every KS
/// round outcome plus the fraction of `L_R` intervals in which KStest
/// declared an attack — the §3.2 false-positive measurement.
pub fn kstest_benign_run(
    app: Application,
    ticks: u64,
    ks_params: KsTestParams,
    seed: u64,
) -> (Vec<KsRound>, f64) {
    let cfg = ExperimentConfig {
        app,
        seed,
        ks_params,
        ..ExperimentConfig::default()
    };
    // Build a server with no attacker: victim + utilities only.
    let server_cfg = ServerConfig { seed: cfg.run_seed(0), ..cfg.server };
    let mut server = Server::new(server_cfg);
    let llc = server.config().geometry.lines() as u64;
    let victim = server.add_vm(app.name(), app.build(llc));
    for i in 0..cfg.utility_vms {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos_workloads::apps::utility::program(i as u64)),
        );
    }
    server.set_monitor_tax(cfg.ks_tax_cycles);

    // lint:allow(panic) -- callers pass parameter sets from the validated
    // experiment configuration; invalid ones are a programming error.
    let mut det = KsTestDetector::new(ks_params).expect("valid params");
    let mut rounds = Vec::new();
    let mut tests_seen = 0;
    let mut interval_alarmed = vec![false; ticks.div_ceil(ks_params.l_r_ticks) as usize];
    for t in 0..ticks {
        let report = server.tick();
        // lint:allow(panic) -- `victim` was registered a few lines up; a
        // missing sample is a simulator bug.
        let obs = Observation::from(report.sample(victim).expect("victim sample"));
        let step = det.on_observation(obs);
        match step.throttle {
            Some(ThrottleRequest::PauseOthers) => server.pause_all_except(victim),
            Some(ThrottleRequest::ResumeAll) => server.resume_all(),
            None => {}
        }
        if det.tests_run() > tests_seen {
            tests_seen = det.tests_run();
            rounds.push(KsRound { tick: t, rejected: det.last_rejected().unwrap_or(false) });
        }
        if det.alarm_active() {
            if let Some(slot) = interval_alarmed.get_mut((t / ks_params.l_r_ticks) as usize) {
                *slot = true;
            }
        }
    }
    let fp = interval_alarmed.iter().filter(|&&a| a).count() as f64
        / interval_alarmed.len().max(1) as f64;
    (rounds, fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_layout_arithmetic() {
        let s = StageConfig::quick();
        assert_eq!(s.attack_start(), 10_000);
        assert_eq!(s.total_ticks(), 16_000);
        assert_eq!(StageConfig::paper().benign_ticks, 30_000);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Sds.to_string(), "SDS");
        assert_eq!(Scheme::KsTest.name(), "KStest");
        assert!(Scheme::Sds.is_passive());
        assert!(!Scheme::KsTest.is_passive());
    }

    #[test]
    fn run_seeds_differ_by_run() {
        let cfg = ExperimentConfig::default();
        assert_ne!(cfg.run_seed(0), cfg.run_seed(1));
        assert_eq!(cfg.run_seed(3), cfg.run_seed(3));
    }

    /// The fork-based attack sweep must be byte-identical to running
    /// each attack from scratch — the contract that makes shared-prefix
    /// capture legitimate for the sensitivity studies.
    #[test]
    fn capture_sweep_matches_per_attack_runs() {
        let stages = StageConfig {
            profile_ticks: 400,
            benign_ticks: 400,
            attack_ticks: 400,
            interval_ticks: 100,
            grace_ticks: 100,
        };
        let base = ExperimentConfig { stages, seed: 0x5EED_CAFE, ..ExperimentConfig::default() };
        let attacks = AttackKind::ALL;
        let swept = base.capture_attack_sweep(&attacks, 3);
        assert_eq!(swept.len(), attacks.len());
        for (attack, sweep_run) in attacks.iter().zip(&swept) {
            let scratch =
                ExperimentConfig { attack: *attack, ..base.clone() }.capture_run(3);
            assert_eq!(sweep_run.observations.len(), scratch.observations.len());
            for (t, (a, b)) in
                sweep_run.observations.iter().zip(&scratch.observations).enumerate()
            {
                assert!(
                    a.access_num.to_bits() == b.access_num.to_bits()
                        && a.miss_num.to_bits() == b.miss_num.to_bits(),
                    "{attack}: tick {t} diverged: sweep {a:?} vs scratch {b:?}"
                );
            }
        }
    }

    #[test]
    fn metrics_split_stages_correctly() {
        let stages = StageConfig {
            profile_ticks: 0,
            benign_ticks: 10,
            attack_ticks: 10,
            interval_ticks: 5,
            grace_ticks: 0,
        };
        // Alarm only in the attack stage, from its 3rd tick on.
        let mut alarm = vec![false; 20];
        for a in alarm.iter_mut().skip(13) {
            *a = true;
        }
        let out = RunOutcome {
            scheme: Scheme::Sds,
            alarm,
            activations: vec![13],
            profile_periodic: false,
        };
        let m = out.metrics(&stages);
        assert_eq!(m.specificity, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.delay_secs, Some(0.03));
    }
}
