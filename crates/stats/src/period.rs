//! DFT-ACF period detection (Vlachos et al., SDM '05), as used by SDS/P.
//!
//! Section 4.2.2: "DFT may detect false frequencies that do not exist in
//! the time series ... ACF ... may result in the detection of multiples of
//! a true period. Therefore, solely using DFT or ACF cannot accurately
//! determine the true frequencies ... we adopt the approach ... that first
//! generates candidate periods using DFT and then uses ACF to identify the
//! real period."
//!
//! The detector here:
//!
//! 1. computes a zero-padded periodogram of the (mean-removed) window,
//! 2. extracts candidate periods from the strongest spectral peaks,
//! 3. validates each candidate on the ACF — a real period must land on an
//!    ACF *hill* — and
//! 4. refines the surviving candidate to a fractional lag by hill-climbing
//!    plus quadratic interpolation.

use crate::acf::{acf, on_hill, refine_peak};
use crate::fft::{periodogram, SpectrumBin};
use crate::StatsError;

/// A validated period estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodEstimate {
    /// The period in samples (fractional, after ACF refinement).
    pub period: f64,
    /// ACF value at the (integer) validated lag — a measure of periodicity
    /// strength in `[-1, 1]`; strongly periodic signals score near 1.
    pub strength: f64,
    /// Power of the periodogram bin that proposed this candidate.
    pub spectral_power: f64,
}

/// Configuration for the DFT-ACF period detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodDetector {
    /// Zero-padding factor for the periodogram (higher = finer candidate
    /// resolution). Default 4.
    pub pad_factor: usize,
    /// Maximum number of spectral peaks to try as candidates, strongest
    /// first. Default 8.
    pub max_candidates: usize,
    /// Neighbourhood radius (in lags) for the ACF hill test and the
    /// hill-climb refinement. Default 2.
    pub hill_radius: usize,
    /// Minimum ACF value at the candidate lag for it to count as a real
    /// period. Default 0.2.
    pub min_strength: f64,
}

impl Default for PeriodDetector {
    fn default() -> Self {
        PeriodDetector {
            pad_factor: 4,
            max_candidates: 8,
            hill_radius: 2,
            min_strength: 0.2,
        }
    }
}

impl PeriodDetector {
    /// Creates a detector with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs DFT-ACF on `signal` and returns the best validated period, or
    /// `None` when no spectral candidate survives ACF validation (i.e. the
    /// signal is not periodic at a detectable scale).
    ///
    /// Candidates are restricted to `[2, len/2]` samples so that at least
    /// two full cycles are present in the window — this is why SDS/P uses
    /// `W_P = 2p` as its minimum monitoring window.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::TooShort`] when the signal has fewer than 8
    /// samples, and propagates periodogram/ACF errors.
    pub fn detect(&self, signal: &[f64]) -> Result<Option<PeriodEstimate>, StatsError> {
        if signal.len() < 8 {
            return Err(StatsError::TooShort { required: 8, actual: signal.len() });
        }
        let n = signal.len();
        let max_period = n as f64 / 2.0;
        let bins = periodogram(signal, self.pad_factor.max(1))?;

        // Keep only candidates whose period fits at least twice in the
        // window, then take the strongest spectral peaks.
        let mut candidates: Vec<SpectrumBin> = bins
            .into_iter()
            .filter(|b| b.period >= 2.0 && b.period <= max_period)
            .collect();
        candidates.sort_by(|a, b| b.power.total_cmp(&a.power));
        candidates.truncate(self.max_candidates.max(1));
        if candidates.is_empty() {
            return Ok(None);
        }

        // Cost-dispatched ACF: short detection windows stay on the direct
        // path, long profiling series take the FFT path.
        let max_lag = (max_period.floor() as usize + self.hill_radius + 1).min(n - 1);
        let acf = acf(signal, max_lag)?;

        // Degenerate (constant) input: ACF is all ones, every lag is a
        // "hill"; there is no meaningful period.
        if acf.iter().all(|&v| (v - 1.0).abs() < 1e-12) {
            return Ok(None);
        }

        for cand in &candidates {
            let lag = cand.period.round() as usize;
            if lag < 2 || lag >= acf.len() {
                continue;
            }
            // Hill-climb to the local ACF maximum near the candidate.
            let peak = self.climb(&acf, lag);
            if !on_hill(&acf, peak, self.hill_radius) {
                continue;
            }
            let strength = acf.get(peak).copied().unwrap_or(0.0);
            if strength < self.min_strength {
                continue;
            }
            let refined = refine_peak(&acf, peak);
            return Ok(Some(PeriodEstimate {
                period: refined,
                strength,
                spectral_power: cand.power,
            }));
        }
        Ok(None)
    }

    /// Hill-climbs from `start` to the nearest local maximum of `acf`,
    /// moving at most `hill_radius` steps at a time.
    fn climb(&self, acf: &[f64], start: usize) -> usize {
        let mut lag = start.min(acf.len() - 1).max(1);
        loop {
            let lo = lag.saturating_sub(self.hill_radius).max(1);
            let hi = (lag + self.hill_radius).min(acf.len() - 1);
            let best = acf
                .iter()
                .enumerate()
                .take(hi + 1)
                .skip(lo)
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(lag);
            if best == lag {
                return lag;
            }
            lag = best;
        }
    }
}

/// Convenience wrapper: detects the period of `signal` with the default
/// [`PeriodDetector`] configuration.
///
/// # Errors
///
/// See [`PeriodDetector::detect`].
///
/// # Example
///
/// ```rust
/// use memdos_stats::period::detect_period;
///
/// let signal: Vec<f64> = (0..120)
///     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 15.0).sin())
///     .collect();
/// let est = detect_period(&signal)?.expect("periodic signal");
/// assert!((est.period - 15.0).abs() < 0.5);
/// # Ok::<(), memdos_stats::StatsError>(())
/// ```
pub fn detect_period(signal: &[f64]) -> Result<Option<PeriodEstimate>, StatsError> {
    PeriodDetector::default().detect(signal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period).sin())
            .collect()
    }

    /// Deterministic pseudo-noise without external dependencies.
    fn noise(n: usize, seed: u64, amp: f64) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                amp * (((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5)
            })
            .collect()
    }

    #[test]
    fn detects_exact_period() {
        let est = detect_period(&sine(160, 16.0)).unwrap().unwrap();
        assert!((est.period - 16.0).abs() < 0.2, "got {}", est.period);
        assert!(est.strength > 0.8);
    }

    #[test]
    fn detects_fractional_period() {
        let est = detect_period(&sine(200, 17.4)).unwrap().unwrap();
        assert!((est.period - 17.4).abs() < 0.6, "got {}", est.period);
    }

    #[test]
    fn detects_period_in_noise() {
        let clean = sine(200, 25.0);
        let noisy: Vec<f64> = clean
            .iter()
            .zip(noise(200, 9, 0.6))
            .map(|(a, b)| a + b)
            .collect();
        let est = detect_period(&noisy).unwrap().unwrap();
        assert!((est.period - 25.0).abs() < 1.5, "got {}", est.period);
    }

    #[test]
    fn rejects_white_noise() {
        // Pure noise should not produce a strong validated period; if one
        // sneaks through it must at least be weak.
        let est = detect_period(&noise(256, 4242, 1.0)).unwrap();
        if let Some(e) = est {
            assert!(e.strength < 0.5, "noise scored {}", e.strength);
        }
    }

    #[test]
    fn rejects_constant_signal() {
        assert_eq!(detect_period(&[3.0; 64]).unwrap(), None);
    }

    #[test]
    fn rejects_linear_trend() {
        // A ramp has no repeating structure; candidates near N/2 exist in
        // the spectrum but should fail ACF-hill validation or be weak.
        let ramp: Vec<f64> = (0..128).map(|i| i as f64).collect();
        if let Some(e) = detect_period(&ramp).unwrap() {
            assert!(e.strength < 0.6, "ramp scored {}", e.strength);
        }
    }

    #[test]
    fn too_short_errors() {
        assert!(matches!(
            detect_period(&[1.0; 7]),
            Err(StatsError::TooShort { .. })
        ));
    }

    #[test]
    fn two_cycle_window_suffices() {
        // W_P = 2p: SDS/P's choice. With exactly two cycles the detector
        // must still find the period.
        let p = 17.0;
        let est = detect_period(&sine(34, p)).unwrap().unwrap();
        assert!((est.period - p).abs() < 2.0, "got {}", est.period);
    }

    #[test]
    fn dilated_period_is_distinguished() {
        // The core SDS/P signal: an attack dilates the period by >20 %.
        let normal = detect_period(&sine(120, 17.0)).unwrap().unwrap();
        let dilated = detect_period(&sine(120, 22.0)).unwrap().unwrap();
        let change = (dilated.period - normal.period).abs() / normal.period;
        assert!(change > 0.2, "dilation not visible: {change}");
    }

    #[test]
    fn harmonic_rich_signal_prefers_fundamental() {
        // Square-ish wave: strong odd harmonics; DFT-ACF should still
        // report the fundamental (or the ACF hill at it).
        let p = 20.0;
        let signal: Vec<f64> = (0..200)
            .map(|i| {
                let phase = (i as f64 / p).fract();
                if phase < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let est = detect_period(&signal).unwrap().unwrap();
        assert!((est.period - p).abs() < 1.0, "got {}", est.period);
    }
}
