//! Chebyshev-inequality helpers for SDS/B parameter selection.
//!
//! Section 4.2.1: because cloud applications follow no single probability
//! distribution, SDS/B bounds its false-alarm probability with Chebyshev's
//! inequality, which holds for *any* distribution with finite variance:
//!
//! `Pr(|X − μ| ≥ kσ) ≤ 1/k²`  (Eq. 4)
//!
//! An EWMA value falls outside the normal range `[μ − kσ, μ + kσ]` with
//! probability at most `1/k²`, so `H_C` consecutive violations occur with
//! probability at most `(1/k²)^{H_C}`. Given a desired confidence level,
//! the provider can trade off `k` (range width → false negatives) against
//! `H_C` (consecutive violations → detection delay). The paper's Table 1
//! uses `k = 1.125`, `H_C = 30` for 99.9 % confidence.

use crate::StatsError;

/// The normal operating range `[μ − kσ, μ + kσ]` for a profiled statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalRange {
    /// Lower bound `μ − kσ`.
    pub lower: f64,
    /// Upper bound `μ + kσ`.
    pub upper: f64,
}

impl NormalRange {
    /// Builds the range from a profiled mean `mu`, standard deviation
    /// `sigma` and boundary factor `k`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `k <= 1` (the paper
    /// requires `k > 1` for Chebyshev's inequality to be informative), if
    /// `sigma < 0`, or if any argument is NaN.
    pub fn new(mu: f64, sigma: f64, k: f64) -> Result<Self, StatsError> {
        if !(k > 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "k",
                reason: "boundary factor must be greater than 1",
            });
        }
        if !(sigma >= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                reason: "standard deviation must be non-negative",
            });
        }
        if mu.is_nan() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                reason: "mean must not be NaN",
            });
        }
        Ok(NormalRange { lower: mu - k * sigma, upper: mu + k * sigma })
    }

    /// The paper's condition `C_n` (Eq. 3): true when `value` lies outside
    /// the normal range.
    pub fn is_violation(&self, value: f64) -> bool {
        value < self.lower || value > self.upper
    }

    /// Width of the range (`2kσ`).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

impl std::fmt::Display for NormalRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.lower, self.upper)
    }
}

/// Upper bound on the probability that a single observation falls outside
/// `[μ − kσ, μ + kσ]`, by Chebyshev's inequality (Eq. 4): `1/k²`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `k <= 1` or NaN.
pub fn chebyshev_tail_bound(k: f64) -> Result<f64, StatsError> {
    if !(k > 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "k",
            reason: "boundary factor must be greater than 1",
        });
    }
    Ok(1.0 / (k * k))
}

/// Upper bound on the false-alarm probability of SDS/B: the probability of
/// `h_c` consecutive out-of-range observations, `(1/k²)^{H_C}`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `k <= 1`/NaN or `h_c == 0`.
pub fn false_alarm_bound(k: f64, h_c: u32) -> Result<f64, StatsError> {
    if h_c == 0 {
        return Err(StatsError::InvalidParameter {
            name: "h_c",
            reason: "consecutive violation threshold must be positive",
        });
    }
    let p = chebyshev_tail_bound(k)?;
    Ok(p.powi(h_c as i32))
}

/// Smallest `H_C` that guarantees the requested confidence level for a
/// given boundary factor `k`, i.e. the smallest `H_C` with
/// `(1/k²)^{H_C} ≤ 1 − confidence`.
///
/// This is the adjustment the paper performs in the Fig. 14 sensitivity
/// study: "the consecutive violation threshold `H_C` was adjusted to keep
/// a confidence of 99.9 % based on Equation (4)". For the Table 1 defaults
/// (`k = 1.125`, 99.9 % confidence) this returns 30.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `k <= 1`/NaN or if
/// `confidence` is not in `(0, 1)`.
///
/// # Example
///
/// ```rust
/// use memdos_stats::bounds::required_h_c;
///
/// assert_eq!(required_h_c(1.125, 0.999).unwrap(), 30);
/// assert_eq!(required_h_c(2.0, 0.999).unwrap(), 5);
/// ```
pub fn required_h_c(k: f64, confidence: f64) -> Result<u32, StatsError> {
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "confidence",
            reason: "confidence level must be in (0, 1)",
        });
    }
    let p = chebyshev_tail_bound(k)?;
    let target = 1.0 - confidence;
    // (1/k²)^h ≤ target  ⇔  h ≥ ln(target) / ln(1/k²).
    let h = (target.ln() / p.ln()).ceil();
    debug_assert!(h >= 1.0);
    Ok(h.max(1.0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_contains_mean() {
        let r = NormalRange::new(10.0, 2.0, 1.125).unwrap();
        assert!(!r.is_violation(10.0));
        assert!((r.lower - 7.75).abs() < 1e-12);
        assert!((r.upper - 12.25).abs() < 1e-12);
        assert!((r.width() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn range_flags_both_sides() {
        let r = NormalRange::new(0.0, 1.0, 2.0).unwrap();
        assert!(r.is_violation(-2.5));
        assert!(r.is_violation(2.5));
        assert!(!r.is_violation(-2.0));
        assert!(!r.is_violation(2.0));
    }

    #[test]
    fn range_zero_sigma_degenerates() {
        let r = NormalRange::new(5.0, 0.0, 1.5).unwrap();
        assert!(!r.is_violation(5.0));
        assert!(r.is_violation(5.0001));
        assert!(r.is_violation(4.9999));
    }

    #[test]
    fn range_rejects_bad_parameters() {
        assert!(NormalRange::new(0.0, 1.0, 1.0).is_err());
        assert!(NormalRange::new(0.0, 1.0, 0.5).is_err());
        assert!(NormalRange::new(0.0, -1.0, 2.0).is_err());
        assert!(NormalRange::new(f64::NAN, 1.0, 2.0).is_err());
        assert!(NormalRange::new(0.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn chebyshev_bound_values() {
        assert!((chebyshev_tail_bound(2.0).unwrap() - 0.25).abs() < 1e-12);
        let k = 1.125;
        assert!((chebyshev_tail_bound(k).unwrap() - 1.0 / (k * k)).abs() < 1e-12);
        assert!(chebyshev_tail_bound(1.0).is_err());
    }

    #[test]
    fn false_alarm_bound_compounds() {
        // k = 2, H_C = 6 → (1/4)^6 ≈ 2.4e-4 < 0.001 (the paper's example).
        let b = false_alarm_bound(2.0, 6).unwrap();
        assert!(b < 0.001);
        // k = 2, H_C = 4 → (1/4)^4 ≈ 3.9e-3 > 0.001.
        assert!(false_alarm_bound(2.0, 4).unwrap() > 0.001);
        assert!(false_alarm_bound(2.0, 0).is_err());
    }

    #[test]
    fn paper_parameter_pairs_hit_999_confidence() {
        // Both example pairs from Section 4.2.1 guarantee 99.9 %.
        assert!(false_alarm_bound(2.0, 6).unwrap() <= 0.001);
        assert!(false_alarm_bound(1.125, 30).unwrap() <= 0.001);
    }

    #[test]
    fn required_h_c_is_minimal() {
        for &(k, conf) in &[(1.125, 0.999), (1.2, 0.999), (1.5, 0.999), (2.0, 0.999)] {
            let h = required_h_c(k, conf).unwrap();
            assert!(false_alarm_bound(k, h).unwrap() <= 1.0 - conf);
            if h > 1 {
                assert!(false_alarm_bound(k, h - 1).unwrap() > 1.0 - conf);
            }
        }
    }

    #[test]
    fn required_h_c_decreases_with_k() {
        // The tradeoff described in §4.2.1: H_C decreases as k increases.
        let hs: Vec<u32> = [1.125, 1.3, 1.5, 2.0]
            .iter()
            .map(|&k| required_h_c(k, 0.999).unwrap())
            .collect();
        for w in hs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn required_h_c_rejects_bad_confidence() {
        assert!(required_h_c(2.0, 0.0).is_err());
        assert!(required_h_c(2.0, 1.0).is_err());
        assert!(required_h_c(2.0, f64::NAN).is_err());
    }
}
