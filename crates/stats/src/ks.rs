//! Two-sample Kolmogorov–Smirnov test.
//!
//! The KStest baseline (Zhang et al., AsiaCCS '17 — reference [49] of the
//! paper) "examine[s] whether the cache-related statistics in real time
//! follow the same probability distribution as the statistics when there is
//! no attack" using the two-sample KS test. This module provides:
//!
//! * the exact two-sample KS statistic `D = sup_x |F_ref(x) − F_mon(x)|`,
//! * the asymptotic p-value via the Kolmogorov distribution, and
//! * the standard large-sample decision rule at significance level `α`:
//!   reject `H_0` (same distribution) when
//!   `D > c(α) · sqrt((n + m) / (n · m))` with `c(α) = sqrt(−ln(α/2)/2)`.

use crate::StatsError;

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D`: the supremum distance between the two
    /// empirical CDFs.
    pub statistic: f64,
    /// Asymptotic p-value (probability of observing a distance at least
    /// this large under `H_0`).
    pub p_value: f64,
    /// Size of the first sample.
    pub n: usize,
    /// Size of the second sample.
    pub m: usize,
}

impl KsResult {
    /// Whether the test rejects `H_0` ("same distribution") at
    /// significance level `alpha`, using the large-sample critical value.
    ///
    /// This is the binary outcome the paper plots in Figure 1: value 1
    /// means "the two sets of samples have distinct probability
    /// distributions".
    pub fn rejects_at(&self, alpha: f64) -> bool {
        let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
        let scale = ((self.n + self.m) as f64 / (self.n as f64 * self.m as f64)).sqrt();
        self.statistic > c * scale
    }
}

/// Runs the two-sample Kolmogorov–Smirnov test on `reference` and
/// `monitored`.
///
/// Neither input needs to be sorted. Ties between and within samples are
/// handled by evaluating the CDF difference after consuming all equal
/// values, the standard convention.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if either sample is empty.
///
/// # Example
///
/// ```rust
/// use memdos_stats::ks::ks_two_sample;
///
/// let a: Vec<f64> = (0..100).map(|x| x as f64).collect();
/// let b: Vec<f64> = (0..100).map(|x| x as f64 + 0.5).collect();
/// let r = ks_two_sample(&a, &b)?;
/// assert!(!r.rejects_at(0.05)); // tiny shift: same distribution
/// # Ok::<(), memdos_stats::StatsError>(())
/// ```
pub fn ks_two_sample(reference: &[f64], monitored: &[f64]) -> Result<KsResult, StatsError> {
    if reference.is_empty() || monitored.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut a = reference.to_vec();
    let mut b = monitored.to_vec();
    a.sort_by(|x, y| x.total_cmp(y));
    b.sort_by(|x, y| x.total_cmp(y));

    let n = a.len();
    let m = b.len();
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while let (Some(&ai), Some(&bj)) = (a.get(i), b.get(j)) {
        let x = ai.min(bj);
        while a.get(i).is_some_and(|&v| v <= x) {
            i += 1;
        }
        while b.get(j).is_some_and(|&v| v <= x) {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }
    // After one sample is exhausted the CDF gap can only shrink toward 0
    // as the other CDF climbs to 1, except at the exhaustion point itself,
    // which the loop above has already evaluated.

    let en = ((n * m) as f64 / (n + m) as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    let p_value = kolmogorov_survival(lambda);

    Ok(KsResult { statistic: d, p_value, n, m })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} exp(−2 j² λ²)`, clamped to `[0, 1]`.
///
/// Used for the asymptotic p-value of the KS statistic.
pub fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(seed: u64, n: usize) -> Vec<f64> {
        // Small deterministic xorshift so the test needs no external RNG.
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = ks_two_sample(&a, &a).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.rejects_at(0.05));
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert_eq!(r.statistic, 1.0);
    }

    #[test]
    fn known_small_example() {
        // F_a jumps at {1,2,3,4}, F_b at {3,4,5,6}; max gap is 0.5 at x in [2,3).
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        let r = ks_two_sample(&a, &b).unwrap();
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_rarely_rejects() {
        let mut rejects = 0;
        for seed in 1..=40u64 {
            let a = uniform(seed, 100);
            let b = uniform(seed + 1000, 100);
            if ks_two_sample(&a, &b).unwrap().rejects_at(0.05) {
                rejects += 1;
            }
        }
        // Significance 0.05 → expect ~2 rejections out of 40; allow slack.
        assert!(rejects <= 6, "too many false rejections: {rejects}");
    }

    #[test]
    fn shifted_distribution_rejects() {
        let a = uniform(7, 200);
        let b: Vec<f64> = uniform(77, 200).iter().map(|x| x + 0.5).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.rejects_at(0.05));
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(ks_two_sample(&[], &[1.0]), Err(StatsError::EmptyInput));
        assert_eq!(ks_two_sample(&[1.0], &[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn ties_are_handled() {
        let a = [1.0, 1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 2.0, 2.0];
        let r = ks_two_sample(&a, &b).unwrap();
        // F_a(1) = 0.75, F_b(1) = 0.25 → D = 0.5.
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kolmogorov_survival_monotone() {
        let mut prev = kolmogorov_survival(0.1);
        for i in 2..40 {
            let q = kolmogorov_survival(i as f64 * 0.1);
            assert!(q <= prev + 1e-12);
            prev = q;
        }
        assert!((kolmogorov_survival(0.0) - 1.0).abs() < 1e-12);
        assert!(kolmogorov_survival(3.0) < 1e-6);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = uniform(3, 64);
        let b = uniform(4, 80);
        let r1 = ks_two_sample(&a, &b).unwrap();
        let r2 = ks_two_sample(&b, &a).unwrap();
        assert!((r1.statistic - r2.statistic).abs() < 1e-15);
    }
}
