//! Tolerance-based float comparison.
//!
//! Raw `==`/`!=` on floats is brittle: values that are mathematically
//! equal differ after rounding, and `NaN != NaN` silently falls through
//! equality checks. The detection pipeline compares variances, ACF
//! denominators and normalization factors against zero all over; this
//! module is the single place those comparisons happen.

/// Default absolute tolerance for [`approx_eq`] and [`approx_zero`].
///
/// Chosen a few orders of magnitude above `f64::EPSILON` so that values
/// produced by short accumulation loops (hundreds of terms) still compare
/// equal to their mathematical value.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// True when `a` and `b` are within `tol` absolutely, or within
/// `tol`-relative of the larger magnitude for large values.
///
/// NaN compares unequal to everything (including NaN), matching IEEE
/// semantics without the footgun of a silent `==`.
///
/// # Example
///
/// ```rust
/// use memdos_stats::float::{approx_eq, DEFAULT_TOLERANCE};
///
/// assert!(approx_eq(0.1 + 0.2, 0.3, DEFAULT_TOLERANCE));
/// assert!(!approx_eq(1.0, 1.1, DEFAULT_TOLERANCE));
/// assert!(!approx_eq(f64::NAN, f64::NAN, DEFAULT_TOLERANCE));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a == b {
        // The one intentional exact comparison: catches identical bit
        // patterns and infinities of the same sign. (The L3 scanner does
        // not fire on untyped `a == b`, so no suppression is needed.)
        return true;
    }
    if a.is_infinite() || b.is_infinite() {
        // Same-sign infinities already matched above; remaining cases
        // (opposite signs, or one finite operand) are never close.
        return false;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

/// True when `x` is within [`DEFAULT_TOLERANCE`] of zero. NaN is not
/// near zero.
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= DEFAULT_TOLERANCE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_after_rounding() {
        assert!(approx_eq(0.1 + 0.2, 0.3, DEFAULT_TOLERANCE));
        assert!(approx_eq(1.0e12 + 0.001, 1.0e12, DEFAULT_TOLERANCE));
    }

    #[test]
    fn distinct_values_differ() {
        assert!(!approx_eq(1.0, 1.0 + 1e-6, DEFAULT_TOLERANCE));
        assert!(!approx_eq(0.0, 1.0, DEFAULT_TOLERANCE));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, DEFAULT_TOLERANCE));
        assert!(!approx_eq(f64::NAN, 0.0, DEFAULT_TOLERANCE));
        assert!(!approx_zero(f64::NAN));
    }

    #[test]
    fn infinities() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, DEFAULT_TOLERANCE));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, DEFAULT_TOLERANCE));
    }

    #[test]
    fn zero_tolerance_band() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(1e-12));
        assert!(!approx_zero(1e-3));
    }
}
