//! Time-series container and summary statistics.
//!
//! A [`TimeSeries`] is the basic exchange format between the simulator
//! (which produces per-tick PCM samples) and the detectors and experiment
//! harness (which consume them). It is a thin, well-behaved wrapper over
//! `Vec<f64>` that adds the summary statistics the paper relies on:
//! mean, standard deviation and percentiles (the paper reports median,
//! 10th and 90th percentiles of 20 runs).

use crate::StatsError;

/// An ordered series of `f64` data points sampled at a fixed interval.
///
/// The sampling interval itself is not stored: all of the paper's methods
/// operate on index space (windows of `W` points, periods measured in MA
/// steps) and convert to seconds only for reporting.
///
/// # Example
///
/// ```rust
/// use memdos_stats::series::TimeSeries;
///
/// let ts: TimeSeries = (1..=5).map(|x| x as f64).collect();
/// assert_eq!(ts.mean().unwrap(), 3.0);
/// assert_eq!(ts.len(), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    data: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { data: Vec::new() }
    }

    /// Creates an empty series with capacity for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries { data: Vec::with_capacity(n) }
    }

    /// Creates a series from a vector of points.
    pub fn from_vec(data: Vec<f64>) -> Self {
        TimeSeries { data }
    }

    /// Appends a data point.
    pub fn push(&mut self, value: f64) {
        self.data.push(value);
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the series contains no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying points as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the series, returning the underlying vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Arithmetic mean.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty.
    pub fn mean(&self) -> Result<f64, StatsError> {
        mean(&self.data)
    }

    /// Population variance (divides by `n`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty.
    pub fn variance(&self) -> Result<f64, StatsError> {
        variance(&self.data)
    }

    /// Population standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty.
    pub fn std_dev(&self) -> Result<f64, StatsError> {
        variance(&self.data).map(f64::sqrt)
    }

    /// Minimum value.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty.
    pub fn min(&self) -> Result<f64, StatsError> {
        self.data
            .iter()
            .copied()
            .reduce(f64::min)
            .ok_or(StatsError::EmptyInput)
    }

    /// Maximum value.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty.
    pub fn max(&self) -> Result<f64, StatsError> {
        self.data
            .iter()
            .copied()
            .reduce(f64::max)
            .ok_or(StatsError::EmptyInput)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) using linear interpolation between
    /// closest ranks, matching the common "type 7" estimator.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty, or
    /// [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Result<f64, StatsError> {
        quantile(&self.data, q)
    }

    /// Median (the 0.5-quantile).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if the series is empty.
    pub fn median(&self) -> Result<f64, StatsError> {
        quantile(&self.data, 0.5)
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        TimeSeries { data: iter.into_iter().collect() }
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(data: Vec<f64>) -> Self {
        TimeSeries { data }
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.data
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl std::ops::Index<usize> for TimeSeries {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        // lint:allow(index) -- std::ops::Index contractually panics out-of-range
        &self.data[index]
    }
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `data` is empty.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population variance of a slice (divides by `n`).
///
/// Uses the two-pass algorithm for numerical stability.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `data` is empty.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / data.len() as f64)
}

/// Population standard deviation of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `data` is empty.
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    variance(data).map(f64::sqrt)
}

/// The `q`-quantile of a slice with linear interpolation ("type 7").
///
/// NaN values are sorted to the end and therefore only influence extreme
/// upper quantiles; series produced by the simulator never contain NaN.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `data` is empty, or
/// [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]` or NaN.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            reason: "quantile must lie in [0, 1]",
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    match (sorted.get(lo), sorted.get(hi)) {
        (Some(&a), _) if lo == hi => Ok(a),
        (Some(&a), Some(&b)) => Ok(a * (1.0 - frac) + b * frac),
        _ => Err(StatsError::EmptyInput),
    }
}

/// Median, 10th- and 90th-percentile summary of a set of run results.
///
/// This is the exact summary the paper reports for every bar chart: "bars
/// give median values and the error bars give the 10th and 90th percentile
/// values".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Median (0.5-quantile) across runs.
    pub median: f64,
    /// 10th percentile across runs.
    pub p10: f64,
    /// 90th percentile across runs.
    pub p90: f64,
}

impl RunSummary {
    /// Summarizes a set of per-run values.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `runs` is empty.
    pub fn from_runs(runs: &[f64]) -> Result<Self, StatsError> {
        Ok(RunSummary {
            median: quantile(runs, 0.5)?,
            p10: quantile(runs, 0.1)?,
            p90: quantile(runs, 0.9)?,
        })
    }
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} [{:.3}, {:.3}]", self.median, self.p10, self.p90)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn mean_empty_errors() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[5.0; 10]).unwrap(), 0.0);
    }

    #[test]
    fn variance_of_known_values() {
        // Population variance of [2, 4, 4, 4, 5, 5, 7, 9] is 4.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&data).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&data).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_median_odd_and_even() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5).unwrap(), 2.0);
        assert_eq!(quantile(&[4.0, 1.0, 2.0, 3.0], 0.5).unwrap(), 2.5);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let data = [9.0, -1.0, 5.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), -1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::InvalidParameter { name: "q", .. })
        ));
        assert!(matches!(
            quantile(&[1.0], f64::NAN),
            Err(StatsError::InvalidParameter { name: "q", .. })
        ));
    }

    #[test]
    fn timeseries_collect_and_stats() {
        let ts: TimeSeries = (0..10).map(|x| x as f64).collect();
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.mean().unwrap(), 4.5);
        assert_eq!(ts.min().unwrap(), 0.0);
        assert_eq!(ts.max().unwrap(), 9.0);
        assert_eq!(ts.median().unwrap(), 4.5);
    }

    #[test]
    fn timeseries_extend_and_index() {
        let mut ts = TimeSeries::new();
        ts.extend([1.0, 2.0]);
        ts.push(3.0);
        assert_eq!(ts[2], 3.0);
        assert_eq!(ts.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(ts.clone().into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn run_summary_matches_quantiles() {
        let runs: Vec<f64> = (1..=11).map(|x| x as f64).collect();
        let s = RunSummary::from_runs(&runs).unwrap();
        assert_eq!(s.median, 6.0);
        assert_eq!(s.p10, 2.0);
        assert_eq!(s.p90, 10.0);
    }

    #[test]
    fn run_summary_display_nonempty() {
        let s = RunSummary { median: 1.0, p10: 0.5, p90: 1.5 };
        assert!(s.to_string().contains("1.000"));
    }
}
