//! Autocorrelation function (ACF).
//!
//! The ACF validates the candidate periods produced by the periodogram in
//! the DFT-ACF scheme (§4.2.2): "Auto Correlation Function (ACF), another
//! method for detecting repeated patterns, can avoid false detection of
//! frequencies ... but may result in the detection of multiples of a true
//! period". A true period lands on a *hill* (local maximum) of the ACF,
//! while a spectral-leakage artefact lands on a valley.
//!
//! Both a direct `O(N·L)` implementation and an FFT-based `O(N log N)`
//! implementation are provided; they agree to floating-point precision.
//! [`acf`] dispatches between them by estimated cost, so long profiling
//! series automatically take the FFT path while the short steady-state
//! detection windows stay on the lower-constant direct path.

use crate::fft::{ifft_in_place, next_power_of_two, rfft, Complex};
use crate::float::approx_zero;
use crate::StatsError;

/// Work estimate (`signal.len() * (max_lag + 1)`) above which [`acf`]
/// switches from the direct `O(N·L)` implementation to the FFT path. Below
/// it the direct path's lower constant factor wins.
pub const ACF_FFT_THRESHOLD: usize = 4096;

/// Computes the (biased, normalized) autocorrelation of `signal` at lags
/// `0..=max_lag`, dispatching to [`acf_fft`] when the direct method's
/// `N·L` work estimate exceeds [`ACF_FFT_THRESHOLD`] and to [`acf_direct`]
/// otherwise. The two implementations agree to floating-point precision,
/// so the dispatch is a pure cost decision.
///
/// # Errors
///
/// Same conditions as [`acf_direct`].
pub fn acf(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    let work = signal.len().saturating_mul(max_lag.saturating_add(1));
    if work > ACF_FFT_THRESHOLD {
        acf_fft(signal, max_lag)
    } else {
        acf_direct(signal, max_lag)
    }
}

/// Computes the (biased, normalized) autocorrelation of `signal` at lags
/// `0..=max_lag` directly: `r_k = Σ (x_t − x̄)(x_{t+k} − x̄) / Σ (x_t − x̄)²`.
///
/// `r_0` is always 1 for non-constant input; for constant input every lag
/// is defined as 1 (perfect self-similarity), mirroring the convention the
/// period detector needs.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty signal, or
/// [`StatsError::TooShort`] if `max_lag >= signal.len()`.
pub fn acf_direct(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if max_lag >= signal.len() {
        return Err(StatsError::TooShort { required: max_lag + 1, actual: signal.len() });
    }
    let n = signal.len();
    let mean = signal.iter().sum::<f64>() / n as f64;
    let centered: Vec<f64> = signal.iter().map(|x| x - mean).collect();
    let denom: f64 = centered.iter().map(|x| x * x).sum();
    if approx_zero(denom) {
        return Ok(vec![1.0; max_lag + 1]);
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for k in 0..=max_lag {
        let num: f64 = centered[..n - k]
            .iter()
            .zip(&centered[k..])
            .map(|(a, b)| a * b)
            .sum();
        out.push(num / denom);
    }
    Ok(out)
}

/// Computes the same autocorrelation as [`acf_direct`] via the
/// Wiener–Khinchin theorem (FFT of the signal, squared magnitudes, inverse
/// FFT), in `O(N log N)`.
///
/// # Errors
///
/// Same conditions as [`acf_direct`].
pub fn acf_fft(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if max_lag >= signal.len() {
        return Err(StatsError::TooShort { required: max_lag + 1, actual: signal.len() });
    }
    let n = signal.len();
    let mean = signal.iter().sum::<f64>() / n as f64;
    // Pad to at least 2N to make the circular convolution linear.
    let padded = next_power_of_two(2 * n);
    let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
    // Forward pass on the real-input half-spectrum path; the power
    // spectrum of a real signal is even, so the full spectrum for the
    // inverse transform is the half spectrum mirrored.
    let spec = rfft(&centered, padded)?;
    let half = padded / 2;
    let power: Vec<f64> = spec.iter().map(Complex::norm_sqr).collect();
    let mut buf: Vec<Complex> = Vec::with_capacity(padded);
    buf.extend(power.iter().map(|&p| Complex::new(p, 0.0)));
    buf.extend(
        power
            .get(1..half)
            .unwrap_or(&[])
            .iter()
            .rev()
            .map(|&p| Complex::new(p, 0.0)),
    );
    ifft_in_place(&mut buf)?;
    let denom = buf[0].re;
    if denom.abs() < 1e-30 {
        return Ok(vec![1.0; max_lag + 1]);
    }
    Ok(buf[..=max_lag].iter().map(|z| z.re / denom).collect())
}

/// Whether lag `lag` sits on a *hill* of the ACF: a local neighbourhood
/// maximum, the validation criterion of the DFT-ACF method.
///
/// A lag is on a hill when its ACF value is at least as large as both
/// neighbours within `radius` lags on either side (boundary lags use the
/// available side only).
pub fn on_hill(acf: &[f64], lag: usize, radius: usize) -> bool {
    if lag == 0 || lag >= acf.len() {
        return false;
    }
    let lo = lag.saturating_sub(radius);
    let hi = (lag + radius).min(acf.len() - 1);
    let v = match acf.get(lag) {
        Some(&v) => v,
        None => return false,
    };
    acf.get(lo..=hi).unwrap_or(&[]).iter().all(|&y| y <= v + 1e-12)
}

/// Refines an integer candidate lag to a fractional peak location by
/// quadratic interpolation through `(lag-1, lag, lag+1)`.
///
/// Returns the candidate lag unchanged when interpolation is impossible
/// (boundary lags or a degenerate parabola).
pub fn refine_peak(acf: &[f64], lag: usize) -> f64 {
    if lag == 0 || lag + 1 >= acf.len() {
        return lag as f64;
    }
    let (Some(&y0), Some(&y1), Some(&y2)) =
        (acf.get(lag - 1), acf.get(lag), acf.get(lag + 1))
    else {
        return lag as f64;
    };
    let denom = y0 - 2.0 * y1 + y2;
    if denom.abs() < 1e-30 {
        return lag as f64;
    }
    let delta = 0.5 * (y0 - y2) / denom;
    if delta.abs() > 1.0 {
        return lag as f64;
    }
    lag as f64 + delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period).sin())
            .collect()
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let signal = sine(100, 10.0);
        let r = acf_direct(&signal, 20).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acf_of_constant_is_all_ones() {
        let r = acf_direct(&[4.0; 32], 8).unwrap();
        assert_eq!(r, vec![1.0; 9]);
        let rf = acf_fft(&[4.0; 32], 8).unwrap();
        assert_eq!(rf, vec![1.0; 9]);
    }

    #[test]
    fn acf_peaks_at_the_period() {
        let signal = sine(200, 20.0);
        let r = acf_direct(&signal, 40).unwrap();
        // Lag 20 (the period) should beat lags 10 and 30 (half / 1.5x).
        assert!(r[20] > r[10]);
        assert!(r[20] > r[30]);
        assert!(r[20] > 0.8);
        assert!(on_hill(&r, 20, 2));
        assert!(!on_hill(&r, 10, 2)); // trough at half period
    }

    #[test]
    fn acf_fft_matches_direct() {
        let signal: Vec<f64> = (0..97).map(|i| ((i * 13) % 17) as f64).collect();
        let a = acf_direct(&signal, 30).unwrap();
        let b = acf_fft(&signal, 30).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn acf_dispatcher_agrees_with_both_paths() {
        // Small input (below threshold → direct) and large input (above
        // threshold → FFT) both match acf_direct.
        let small: Vec<f64> = (0..40).map(|i| ((i * 7) % 5) as f64).collect();
        assert_eq!(acf(&small, 10).unwrap(), acf_direct(&small, 10).unwrap());
        let large: Vec<f64> = (0..600).map(|i| ((i * 13) % 23) as f64).collect();
        let a = acf(&large, 150).unwrap();
        let b = acf_direct(&large, 150).unwrap();
        assert!(large.len() * 151 > ACF_FFT_THRESHOLD);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn acf_rejects_bad_inputs() {
        assert_eq!(acf_direct(&[], 0), Err(StatsError::EmptyInput));
        assert!(matches!(
            acf_direct(&[1.0, 2.0], 2),
            Err(StatsError::TooShort { .. })
        ));
        assert_eq!(acf_fft(&[], 0), Err(StatsError::EmptyInput));
        assert!(matches!(acf_fft(&[1.0], 1), Err(StatsError::TooShort { .. })));
    }

    #[test]
    fn on_hill_boundary_behaviour() {
        let acf = [1.0, 0.5, 0.9, 0.4];
        assert!(!on_hill(&acf, 0, 1)); // lag 0 never counts
        assert!(on_hill(&acf, 2, 1));
        assert!(!on_hill(&acf, 1, 1));
        assert!(!on_hill(&acf, 4, 1)); // out of range
    }

    #[test]
    fn refine_peak_recovers_fractional_maximum() {
        // Parabola peaking at 5.3: y = -(x - 5.3)^2.
        let acf: Vec<f64> = (0..10).map(|i| -((i as f64 - 5.3).powi(2))).collect();
        let refined = refine_peak(&acf, 5);
        assert!((refined - 5.3).abs() < 1e-9);
    }

    #[test]
    fn refine_peak_degenerate_returns_lag() {
        let flat = [0.0; 8];
        assert_eq!(refine_peak(&flat, 3), 3.0);
        assert_eq!(refine_peak(&flat, 0), 0.0);
        assert_eq!(refine_peak(&flat, 7), 7.0);
    }
}
