//! Sliding-window moving average and exponentially weighted moving average.
//!
//! Section 4.1 of the paper preprocesses the raw PCM statistics
//! `{A_1, A_2, ...}` in two steps:
//!
//! 1. **Moving average (Eq. 1)** over a window of `W` raw points, sliding
//!    by `ΔW` points: `M_n = (1/W) Σ_{i=1+nΔW}^{W+nΔW} A_i`.
//! 2. **EWMA (Eq. 2)** over the MA series:
//!    `S_0 = M_0`, `S_n = (1 − α) S_{n−1} + α M_n`.
//!
//! Both are implemented here as *streaming* operators: a raw sample goes
//! in, and whenever enough data has accumulated an output value comes out.
//! This is what makes SDS "responsive" — no batching or throttling is
//! required to produce the monitored series.

use crate::StatsError;

/// Streaming sliding-window moving average (Eq. 1 of the paper).
///
/// Emits the mean of the latest `window` samples every `step` samples,
/// once the first full window has been observed.
///
/// # Example
///
/// ```rust
/// use memdos_stats::smoothing::MovingAverage;
///
/// let mut ma = MovingAverage::new(4, 2).unwrap();
/// let outputs: Vec<f64> = (1..=8).filter_map(|x| ma.push(x as f64)).collect();
/// // Windows: [1,2,3,4] -> 2.5, [3,4,5,6] -> 4.5, [5,6,7,8] -> 6.5
/// assert_eq!(outputs, vec![2.5, 4.5, 6.5]);
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    step: usize,
    /// Ring buffer of the last `window` samples.
    buf: Vec<f64>,
    /// Next write position in `buf`.
    head: usize,
    /// Total samples seen.
    seen: u64,
    /// Running sum of the samples currently in `buf`.
    sum: f64,
    /// Samples seen since the last emitted window.
    since_emit: usize,
    /// Number of MA values emitted so far.
    emitted: u64,
}

impl MovingAverage {
    /// Creates a moving-average operator with window size `window` (the
    /// paper's `W`) and slide step `step` (the paper's `ΔW`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `window == 0`,
    /// `step == 0`, or `step > window`.
    pub fn new(window: usize, step: usize) -> Result<Self, StatsError> {
        if window == 0 {
            return Err(StatsError::InvalidParameter {
                name: "window",
                reason: "window size W must be positive",
            });
        }
        if step == 0 {
            return Err(StatsError::InvalidParameter {
                name: "step",
                reason: "slide step ΔW must be positive",
            });
        }
        if step > window {
            return Err(StatsError::InvalidParameter {
                name: "step",
                reason: "slide step ΔW must not exceed window size W",
            });
        }
        Ok(MovingAverage {
            window,
            step,
            buf: Vec::with_capacity(window),
            head: 0,
            seen: 0,
            sum: 0.0,
            since_emit: 0,
            emitted: 0,
        })
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Slide step `ΔW`.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Number of MA values emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Heap bytes held by the sample ring buffer — a deterministic
    /// capacity-based accounting figure for resident-memory estimates
    /// (the buffer is the operator's only allocation).
    pub fn resident_bytes_hint(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<f64>()
    }

    /// Feeds one raw sample; returns `Some(M_n)` when a new window
    /// completes (every `ΔW` samples once `W` samples have been seen).
    ///
    /// Amortized `O(1)`: emission divides the running sum instead of
    /// re-summing the window, and the sum is re-derived from the buffer
    /// once per full window turnover so add/subtract rounding drift cannot
    /// accumulate over long-running streams.
    pub fn push(&mut self, sample: f64) -> Option<f64> {
        if self.buf.len() < self.window {
            self.buf.push(sample);
            self.sum += sample;
        } else {
            if let Some(slot) = self.buf.get_mut(self.head) {
                self.sum += sample - *slot;
                *slot = sample;
            }
            self.head += 1;
            if self.head == self.window {
                self.head = 0;
                // Periodic exact resync (one pass per W samples).
                self.sum = self.buf.iter().sum();
            }
        }
        self.seen += 1;
        if self.seen < self.window as u64 {
            return None;
        }
        if self.seen == self.window as u64 {
            self.since_emit = 0;
            self.emitted += 1;
            return Some(self.mean());
        }
        self.since_emit += 1;
        if self.since_emit == self.step {
            self.since_emit = 0;
            self.emitted += 1;
            Some(self.mean())
        } else {
            None
        }
    }

    /// The window mean from the running sum — `O(1)` per emission.
    fn mean(&self) -> f64 {
        self.sum / self.window as f64
    }

    /// Applies the operator to a whole slice, returning the MA series
    /// `{M_0, M_1, ...}`.
    pub fn apply(window: usize, step: usize, data: &[f64]) -> Result<Vec<f64>, StatsError> {
        let mut op = MovingAverage::new(window, step)?;
        Ok(data.iter().filter_map(|&x| op.push(x)).collect())
    }
}

/// Streaming exponentially weighted moving average (Eq. 2 of the paper).
///
/// `S_0 = M_0`; `S_n = (1 − α) S_{n−1} + α M_n` thereafter. A larger `α`
/// reduces smoothing and gives more weight to recent data.
///
/// # Example
///
/// ```rust
/// use memdos_stats::smoothing::Ewma;
///
/// let mut ewma = Ewma::new(0.5).unwrap();
/// assert_eq!(ewma.push(4.0), 4.0);          // S_0 = M_0
/// assert_eq!(ewma.push(8.0), 6.0);          // 0.5*4 + 0.5*8
/// assert_eq!(ewma.value(), Some(6.0));
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA operator with smoothing factor `alpha`.
    ///
    /// The paper requires `0 < α < 1` in Eq. (2); `α = 1` is additionally
    /// accepted because the sensitivity study (Fig. 13) sweeps `α` up to
    /// 1.0, where "the EWMA time series is equivalent to the MA time
    /// series".
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `alpha` is not in
    /// `(0, 1]` or is NaN.
    pub fn new(alpha: f64) -> Result<Self, StatsError> {
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                reason: "EWMA smoothing factor must be in (0, 1]",
            });
        }
        Ok(Ewma { alpha, state: None })
    }

    /// Smoothing factor `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current smoothed value `S_n`, if any input has been seen.
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Feeds one MA value and returns the updated smoothed value `S_n`.
    pub fn push(&mut self, m: f64) -> f64 {
        let s = match self.state {
            None => m,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * m,
        };
        self.state = Some(s);
        s
    }

    /// Resets the operator to its initial (empty) state.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Applies the operator to a whole slice, returning `{S_0, S_1, ...}`.
    pub fn apply(alpha: f64, data: &[f64]) -> Result<Vec<f64>, StatsError> {
        let mut op = Ewma::new(alpha)?;
        Ok(data.iter().map(|&m| op.push(m)).collect())
    }
}

/// The full Section 4.1 preprocessing pipeline: raw samples → MA → EWMA.
///
/// Feeding raw PCM samples yields an EWMA value every `ΔW` raw samples
/// (after the initial `W`-sample fill), exactly the cadence SDS/B checks
/// its boundary condition at.
///
/// # Example
///
/// ```rust
/// use memdos_stats::smoothing::Pipeline;
///
/// let mut p = Pipeline::new(200, 50, 0.2).unwrap();
/// let mut outputs = 0;
/// for i in 0..1000u32 {
///     if p.push(f64::from(i)).is_some() {
///         outputs += 1;
///     }
/// }
/// // First output after 200 samples, then one per 50: 1 + (1000-200)/50
/// assert_eq!(outputs, 17);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    ma: MovingAverage,
    ewma: Ewma,
}

/// One output of [`Pipeline::push`]: the MA value `M_n` and the EWMA value
/// `S_n` for the window that just completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Smoothed {
    /// Moving-average value `M_n` (Eq. 1).
    pub ma: f64,
    /// EWMA value `S_n` (Eq. 2).
    pub ewma: f64,
}

impl Pipeline {
    /// Creates the preprocessing pipeline with window `W`, step `ΔW` and
    /// EWMA factor `α`.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation from [`MovingAverage::new`] and
    /// [`Ewma::new`].
    pub fn new(window: usize, step: usize, alpha: f64) -> Result<Self, StatsError> {
        Ok(Pipeline {
            ma: MovingAverage::new(window, step)?,
            ewma: Ewma::new(alpha)?,
        })
    }

    /// Feeds one raw sample; returns the smoothed pair when a window
    /// completes.
    pub fn push(&mut self, raw: f64) -> Option<Smoothed> {
        let m = self.ma.push(raw)?;
        let s = self.ewma.push(m);
        Some(Smoothed { ma: m, ewma: s })
    }

    /// Number of smoothed values emitted so far.
    pub fn emitted(&self) -> u64 {
        self.ma.emitted()
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.ma.window()
    }

    /// Slide step `ΔW`.
    pub fn step(&self) -> usize {
        self.ma.step()
    }

    /// Heap bytes held by the pipeline (the MA ring buffer; the EWMA is
    /// two scalars). See [`MovingAverage::resident_bytes_hint`].
    pub fn resident_bytes_hint(&self) -> usize {
        self.ma.resident_bytes_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ma_rejects_bad_parameters() {
        assert!(MovingAverage::new(0, 1).is_err());
        assert!(MovingAverage::new(4, 0).is_err());
        assert!(MovingAverage::new(4, 5).is_err());
        assert!(MovingAverage::new(4, 4).is_ok());
    }

    #[test]
    fn ma_emits_at_correct_cadence() {
        let mut ma = MovingAverage::new(3, 1).unwrap();
        assert_eq!(ma.push(1.0), None);
        assert_eq!(ma.push(2.0), None);
        assert_eq!(ma.push(3.0), Some(2.0));
        assert_eq!(ma.push(4.0), Some(3.0));
        assert_eq!(ma.push(5.0), Some(4.0));
        assert_eq!(ma.emitted(), 3);
    }

    #[test]
    fn ma_matches_paper_equation_one() {
        // With W=4, ΔW=2 the n-th window is {A_{1+2n} .. A_{4+2n}} (1-based).
        let data: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let out = MovingAverage::apply(4, 2, &data).unwrap();
        assert_eq!(out, vec![2.5, 4.5, 6.5, 8.5]);
    }

    #[test]
    fn ma_constant_input_is_exact_forever() {
        let mut ma = MovingAverage::new(8, 8).unwrap();
        let mut last = None;
        for _ in 0..100_000 {
            if let Some(v) = ma.push(7.25) {
                last = Some(v);
            }
        }
        assert_eq!(last, Some(7.25));
    }

    #[test]
    fn ewma_rejects_bad_alpha() {
        assert!(Ewma::new(0.0).is_err());
        assert!(Ewma::new(-0.1).is_err());
        assert!(Ewma::new(1.1).is_err());
        assert!(Ewma::new(f64::NAN).is_err());
        assert!(Ewma::new(1.0).is_ok());
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let mut e = Ewma::new(1.0).unwrap();
        assert_eq!(e.push(3.0), 3.0);
        assert_eq!(e.push(-8.0), -8.0);
    }

    #[test]
    fn ewma_matches_paper_equation_two() {
        let alpha = 0.2;
        let ms = [10.0, 20.0, 30.0];
        let out = Ewma::apply(alpha, &ms).unwrap();
        assert_eq!(out[0], 10.0);
        assert!((out[1] - (0.8 * 10.0 + 0.2 * 20.0)).abs() < 1e-12);
        assert!((out[2] - (0.8 * out[1] + 0.2 * 30.0)).abs() < 1e-12);
    }

    #[test]
    fn ewma_reset_forgets_state() {
        let mut e = Ewma::new(0.5).unwrap();
        e.push(100.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.push(2.0), 2.0);
    }

    #[test]
    fn pipeline_cadence_matches_ma() {
        let mut p = Pipeline::new(10, 5, 0.3).unwrap();
        let mut count = 0;
        for i in 0..100 {
            if p.push(i as f64).is_some() {
                count += 1;
            }
        }
        // 1 at sample 10, then one per 5 samples: 1 + (100 - 10)/5 = 19.
        assert_eq!(count, 19);
        assert_eq!(p.emitted(), 19);
    }

    #[test]
    fn pipeline_first_output_equals_ma() {
        let mut p = Pipeline::new(4, 2, 0.2).unwrap();
        let mut first = None;
        for x in [1.0, 2.0, 3.0, 4.0] {
            if let Some(s) = p.push(x) {
                first = Some(s);
            }
        }
        let s = first.unwrap();
        assert_eq!(s.ma, 2.5);
        assert_eq!(s.ewma, 2.5); // S_0 = M_0
    }
}
