//! Correlation-based exploration methods from Section 3.4.
//!
//! Before settling on SDS/B and SDS/P, the paper explored whether
//! cache-related statistics become *less correlated* under attack, using
//! spectral coherence, cross-correlation and Pearson correlation — and
//! found that "these approaches are not useful for detecting both attacks
//! since the correlations among the cache-related statistics do not show
//! any decreasing trend after the attacks are launched".
//!
//! The methods are implemented here both for completeness and so the
//! negative result can be reproduced (`tab_s34_correlation` bench).

use crate::fft::{fft_real, next_power_of_two};
use crate::float::approx_zero;
use crate::StatsError;

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns a value in `[-1, 1]`; returns 0 when either series is constant
/// (correlation undefined — the conservative choice for a detector that
/// looks for *decreases* in correlation).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if the series are empty or
/// [`StatsError::LengthMismatch`] if their lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.is_empty() || y.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if approx_zero(sxx) || approx_zero(syy) {
        return Ok(0.0);
    }
    Ok((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Normalized cross-correlation of `x` and `y` at integer lags
/// `-max_lag ..= max_lag`.
///
/// Entry `i` of the result corresponds to lag `i as isize - max_lag as
/// isize`; positive lags shift `y` forward relative to `x`. Values are
/// normalized by the zero-lag energies so a perfect shifted copy scores 1.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for empty inputs,
/// [`StatsError::LengthMismatch`] for different lengths, or
/// [`StatsError::TooShort`] if `max_lag >= len`.
pub fn cross_correlation(x: &[f64], y: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if x.is_empty() || y.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    if max_lag >= x.len() {
        return Err(StatsError::TooShort { required: max_lag + 1, actual: x.len() });
    }
    let n = x.len();
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let cx: Vec<f64> = x.iter().map(|v| v - mx).collect();
    let cy: Vec<f64> = y.iter().map(|v| v - my).collect();
    let ex: f64 = cx.iter().map(|v| v * v).sum();
    let ey: f64 = cy.iter().map(|v| v * v).sum();
    let denom = (ex * ey).sqrt();
    let mut out = Vec::with_capacity(2 * max_lag + 1);
    for lag in -(max_lag as isize)..=(max_lag as isize) {
        let mut acc = 0.0;
        for (t, &cxv) in cx.iter().enumerate() {
            let u = t as isize + lag;
            if u >= 0 {
                if let Some(&cyv) = cy.get(u as usize) {
                    acc += cxv * cyv;
                }
            }
        }
        out.push(if approx_zero(denom) { 0.0 } else { acc / denom });
    }
    Ok(out)
}

/// Maximum absolute normalized cross-correlation over lags
/// `-max_lag ..= max_lag` — the scalar summary used in the Section 3.4
/// exploration.
///
/// # Errors
///
/// Same conditions as [`cross_correlation`].
pub fn max_cross_correlation(x: &[f64], y: &[f64], max_lag: usize) -> Result<f64, StatsError> {
    let xc = cross_correlation(x, y, max_lag)?;
    Ok(xc.iter().fold(0.0_f64, |m, v| m.max(v.abs())))
}

/// Magnitude-squared spectral coherence between `x` and `y`, averaged over
/// Welch-style segments of length `segment_len` with 50 % overlap:
///
/// `C_xy(f) = |S_xy(f)|² / (S_xx(f) · S_yy(f))`
///
/// Returns the mean coherence across frequency bins (excluding DC), a
/// scalar in `[0, 1]`. Without segment averaging two-signal coherence is
/// identically 1, so at least 2 segments are required.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] / [`StatsError::LengthMismatch`] as
/// above, or [`StatsError::TooShort`] if fewer than two segments fit.
pub fn mean_coherence(x: &[f64], y: &[f64], segment_len: usize) -> Result<f64, StatsError> {
    if x.is_empty() || y.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    let seg = next_power_of_two(segment_len.max(8));
    let hop = seg / 2;
    if x.len() < seg + hop {
        return Err(StatsError::TooShort { required: seg + hop, actual: x.len() });
    }

    let half = seg / 2;
    let mut sxx = vec![0.0f64; half];
    let mut syy = vec![0.0f64; half];
    let mut sxy_re = vec![0.0f64; half];
    let mut sxy_im = vec![0.0f64; half];
    let mut segments = 0usize;

    let mut start = 0;
    while start + seg <= x.len() {
        let wx = windowed(&x[start..start + seg]);
        let wy = windowed(&y[start..start + seg]);
        let fx = fft_real(&wx, seg)?;
        let fy = fft_real(&wy, seg)?;
        let bins = fx.get(1..=half).unwrap_or(&[]).iter().zip(fy.get(1..=half).unwrap_or(&[]));
        let accs = sxx.iter_mut().zip(&mut syy).zip(sxy_re.iter_mut().zip(&mut sxy_im));
        for ((a, b), ((sx, sy), (re, im))) in bins.zip(accs) {
            *sx += a.norm_sqr();
            *sy += b.norm_sqr();
            // S_xy = X * conj(Y)
            let c = *a * b.conj();
            *re += c.re;
            *im += c.im;
        }
        segments += 1;
        start += hop;
    }
    debug_assert!(segments >= 2);

    let mut acc = 0.0;
    let mut count = 0usize;
    for ((sx, sy), (re, im)) in sxx.iter().zip(&syy).zip(sxy_re.iter().zip(&sxy_im)) {
        let denom = sx * sy;
        if denom > 1e-30 {
            let num = re * re + im * im;
            acc += (num / denom).clamp(0.0, 1.0);
            count += 1;
        }
    }
    if count == 0 {
        return Ok(0.0);
    }
    Ok(acc / count as f64)
}

/// Applies a Hann window after mean removal (reduces spectral leakage).
fn windowed(seg: &[f64]) -> Vec<f64> {
    let n = seg.len();
    let mean = seg.iter().sum::<f64>() / n as f64;
    seg.iter()
        .enumerate()
        .map(|(i, &v)| {
            let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos();
            (v - mean) * w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_noise_is_small() {
        let x = noise(2000, 1);
        let y = noise(2000, 2);
        assert!(pearson(&x, &y).unwrap().abs() < 0.1);
    }

    #[test]
    fn pearson_constant_returns_zero() {
        let x = [1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn pearson_errors() {
        assert!(pearson(&[], &[]).is_err());
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn cross_correlation_finds_shift() {
        let x = noise(256, 7);
        // y is x delayed by 5 samples.
        let mut y = vec![0.0; 256];
        for i in 5..256 {
            y[i] = x[i - 5];
        }
        let xc = cross_correlation(&x, &y, 10).unwrap();
        let best = xc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as isize
            - 10;
        assert_eq!(best, 5);
        assert!((max_cross_correlation(&x, &y, 10).unwrap() - 1.0).abs() < 0.1);
    }

    #[test]
    fn cross_correlation_zero_lag_is_pearson() {
        let x = noise(128, 3);
        let y = noise(128, 4);
        let xc = cross_correlation(&x, &y, 4).unwrap();
        let p = pearson(&x, &y).unwrap();
        assert!((xc[4] - p).abs() < 1e-9);
    }

    #[test]
    fn cross_correlation_errors() {
        assert!(cross_correlation(&[], &[], 0).is_err());
        assert!(cross_correlation(&[1.0; 4], &[1.0; 5], 1).is_err());
        assert!(matches!(
            cross_correlation(&[1.0; 4], &[1.0; 4], 4),
            Err(StatsError::TooShort { .. })
        ));
    }

    #[test]
    fn coherence_of_identical_signals_is_high() {
        let x = noise(512, 11);
        let c = mean_coherence(&x, &x, 64).unwrap();
        assert!(c > 0.99, "self-coherence {c}");
    }

    #[test]
    fn coherence_of_independent_noise_is_low() {
        let x = noise(4096, 21);
        let y = noise(4096, 22);
        let c = mean_coherence(&x, &y, 64).unwrap();
        assert!(c < 0.5, "independent coherence {c}");
    }

    #[test]
    fn coherence_needs_two_segments() {
        let x = noise(64, 1);
        assert!(matches!(
            mean_coherence(&x, &x, 64),
            Err(StatsError::TooShort { .. })
        ));
    }
}
