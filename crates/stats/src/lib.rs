//! # memdos-stats
//!
//! From-scratch statistics and signal-processing primitives used by the
//! `memdos` workspace, a reproduction of *"Impact of Memory DoS Attacks on
//! Cloud Applications and Real-Time Detection Schemes"* (ICPP '20).
//!
//! The crate deliberately avoids external numeric dependencies: every
//! routine the paper's detection schemes rely on is implemented here.
//!
//! ## Contents
//!
//! * [`series`] — time-series container and summary statistics
//!   (mean/variance/percentiles) used by every experiment.
//! * [`smoothing`] — sliding-window moving average (Eq. 1) and exponentially
//!   weighted moving average (Eq. 2) in streaming form.
//! * [`bounds`] — Chebyshev-inequality helpers used by SDS/B to pick the
//!   boundary factor `k` and violation threshold `H_C` (Eq. 4).
//! * [`ks`] — two-sample Kolmogorov–Smirnov test used by the KStest
//!   baseline detector (Zhang et al., AsiaCCS '17).
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT and periodogram.
//! * [`acf`] — autocorrelation function (direct and FFT-accelerated).
//! * [`period`] — the DFT-ACF period detector (Vlachos et al.) used by
//!   SDS/P.
//! * [`correlate`] — Pearson correlation, cross-correlation and spectral
//!   coherence: the Section 3.4 exploration methods the paper found *not*
//!   to discriminate attacks.
//!
//! ## Example
//!
//! ```rust
//! use memdos_stats::smoothing::{MovingAverage, Ewma};
//!
//! // Paper defaults: W = 200 raw points, step ΔW = 50, EWMA α = 0.2.
//! let mut ma = MovingAverage::new(200, 50).unwrap();
//! let mut ewma = Ewma::new(0.2).unwrap();
//! for raw in 0..1000u64 {
//!     if let Some(m) = ma.push(raw as f64) {
//!         let s = ewma.push(m);
//!         assert!(s.is_finite());
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod bounds;
pub mod correlate;
pub mod fft;
pub mod float;
pub mod ks;
pub mod period;
pub mod rng;
pub mod series;
pub mod smoothing;

mod error;

pub use error::StatsError;
