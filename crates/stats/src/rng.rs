//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace — workload jitter, attacker
//! scheduling, address selection — flows from a per-run `u64` seed through
//! this module, making every experiment reproducible bit-for-bit. The
//! generator is xoshiro256++ seeded via SplitMix64, the standard
//! recommendation for non-cryptographic simulation use.

/// Derives an independent, reproducible seed for stream `stream` from a
/// base seed, without constructing a generator: golden-ratio (SplitMix64
/// increment) mixing plus an offset so that stream 0 does not collapse to
/// the base seed.
///
/// This is the workspace's single seed-derivation point — ad-hoc
/// golden-ratio mixing outside this module is rejected by the xtask lint —
/// and the function is deliberately order-free: the derived seed depends
/// only on `(base, stream)`, never on how many seeds were derived before
/// it, which is what lets the parallel runner reproduce sequential results
/// bit-for-bit.
pub const fn derive_seed(base: u64, stream: u64) -> u64 {
    base ^ stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678)
}

/// A xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure; statistics-quality randomness for
/// simulation only.
///
/// # Example
///
/// ```rust
/// use memdos_stats::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed. Any seed (including 0) is valid;
    /// the state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Derives an independent child generator; used to give each VM its
    /// own stream from the experiment seed.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses the widening-multiply technique with a rejection step, so the
    /// result is unbiased for every bound.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard-normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.next_f64()).max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }
}

/// A uniform sampler over `[0, bound)` with the rejection threshold of
/// Lemire's method precomputed at construction.
///
/// [`Rng::next_below`] recomputes `bound.wrapping_neg() % bound` — a
/// 64-bit division — on every call; hot loops that draw the same bound
/// millions of times (workload address and compute-cycle draws) build
/// one of these instead. `sample` consumes the generator stream
/// draw-for-draw identically to `next_below(bound)`, so swapping one in
/// never changes a seeded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    bound: u64,
    threshold: u64,
}

impl UniformU64 {
    /// Creates a sampler over `[0, bound)`; a zero bound always yields 0.
    pub fn new(bound: u64) -> Self {
        let threshold = if bound == 0 { 0 } else { bound.wrapping_neg() % bound };
        UniformU64 { bound, threshold }
    }

    /// The sampler's exclusive upper bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draws the next value, consuming exactly the stream that
    /// `rng.next_below(self.bound())` would.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        if self.bound == 0 {
            return 0;
        }
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(self.bound as u128);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A Zipfian sampler over `{0, 1, ..., n-1}` with exponent `theta`,
/// used by the PageRank workload (the paper's web graph "hyperlinks follow
/// a Zipfian distribution").
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample and needs no `O(n)` table.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with skew `theta > 0`
    /// (`theta = 1` is classic Zipf; larger is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta <= 0` or `theta` is NaN.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(theta > 0.0, "Zipf exponent must be positive");
        let h = |x: f64, q: f64| -> f64 {
            if (q - 1.0).abs() < 1e-12 {
                (1.0 + x).ln()
            } else {
                ((1.0 + x).powf(1.0 - q) - 1.0) / (1.0 - q)
            }
        };
        let h_x1 = h(1.5, theta) - 1.0;
        let h_n = h(n as f64 + 0.5, theta);
        let s = 2.0 - {
            // h^{-1}(h(2.5) - (2)^{-theta}) - 1.5, per the algorithm.
            let v = h(2.5, theta) - (2.0f64).powf(-theta);
            Self::h_inv(v, theta) - 1.0
        };
        Zipf { n, theta, h_x1, h_n, s }
    }

    fn h_inv(x: f64, q: f64) -> f64 {
        if (q - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - q)).powf(1.0 / (1.0 - q))
        }
    }

    /// Number of items in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Draws a sample in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = Self::h_inv(u, self.theta) - 1.0;
            let k = (x + 0.5).floor().max(0.0).min((self.n - 1) as f64);
            let h_k = {
                let kk = k + 0.5;
                if (self.theta - 1.0).abs() < 1e-12 {
                    (1.0 + kk).ln()
                } else {
                    ((1.0 + kk).powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta)
                }
            };
            if k - x <= self.s || u >= h_k - (1.0 + k).powf(-self.theta) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_pure_and_stream_sensitive() {
        assert_eq!(derive_seed(0xD05, 3), derive_seed(0xD05, 3));
        assert_ne!(derive_seed(0xD05, 0), derive_seed(0xD05, 1));
        assert_ne!(derive_seed(0xD05, 0), 0xD05 ^ 0); // stream 0 still mixes
        // Pinned value: experiment reproducibility depends on this exact
        // mixing, so a change must be deliberate and show up here.
        assert_eq!(
            derive_seed(0, 1),
            0x9E37_79B9_7F4A_7C15u64.wrapping_add(0x1234_5678)
        );
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(99);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Rng::new(5);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn uniform_u64_matches_next_below_stream() {
        // Same seed, same bounds: the precomputed sampler must produce
        // the identical value sequence AND leave the generator in the
        // identical state as `next_below`.
        for bound in [1u64, 2, 3, 7, 21, 100, 40_960, 1 << 40] {
            let mut a = Rng::new(0xBEEF ^ bound);
            let mut b = Rng::new(0xBEEF ^ bound);
            let sampler = UniformU64::new(bound);
            for _ in 0..500 {
                assert_eq!(sampler.sample(&mut a), b.next_below(bound));
            }
            assert_eq!(a.next_u64(), b.next_u64(), "stream diverged for {bound}");
        }
        assert_eq!(UniformU64::new(0).sample(&mut Rng::new(1)), 0);
        assert_eq!(UniformU64::new(17).bound(), 17);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Rng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut r = Rng::new(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn range_inclusive_panics_on_inverted() {
        Rng::new(1).range_inclusive(5, 3);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(17);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(19);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(23);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn zipf_in_domain_and_skewed() {
        let mut r = Rng::new(29);
        let z = Zipf::new(1000, 1.0);
        let mut head = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let v = z.sample(&mut r);
            assert!(v < 1000);
            if v < 10 {
                head += 1;
            }
        }
        // For Zipf(1.0) over 1000 items, the top-10 mass is
        // H(10)/H(1000) ≈ 2.93/7.49 ≈ 39 %.
        let frac = head as f64 / n as f64;
        assert!((0.30..0.50).contains(&frac), "head mass {frac}");
    }

    #[test]
    fn zipf_theta_two_is_more_skewed_than_one() {
        let mut r = Rng::new(31);
        let z1 = Zipf::new(1000, 1.0);
        let z2 = Zipf::new(1000, 2.0);
        let head = |z: &Zipf, r: &mut Rng| {
            (0..10_000).filter(|_| z.sample(r) == 0).count() as f64 / 10_000.0
        };
        let h1 = head(&z1, &mut r);
        let h2 = head(&z2, &mut r);
        assert!(h2 > h1, "theta=2 head {h2} vs theta=1 head {h1}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_domain() {
        Zipf::new(0, 1.0);
    }
}
