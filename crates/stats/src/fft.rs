//! Iterative radix-2 Cooley–Tukey FFT and periodogram.
//!
//! SDS/P locates candidate periods from the *dominant frequency* of the MA
//! time series — "the frequency that has the maximum amplitude ... equal to
//! the reciprocal of the period" (§4.2.2). The periodogram here supports
//! zero-padding, which interpolates the spectrum so that periods that are
//! not exact divisors of the window length can still be localized; the
//! residual bias is then removed by the ACF refinement step in
//! [`crate::period`].
//!
//! Two layers of optimization keep the transform off the detection hot
//! path's profile:
//!
//! * [`FftPlan`] precomputes the twiddle factors for one transform size;
//!   plans are cached per thread and per size, so steady-state detection
//!   (which transforms the same window length tick after tick) performs no
//!   trigonometry at all.
//! * [`rfft`] exploits the conjugate symmetry of real input: an `N`-point
//!   real transform is computed as an `N/2`-point complex transform plus an
//!   `O(N)` unpacking pass, roughly halving the work of [`fft_real`].

// lint:allow(shared-state) -- single-thread interior mutability for the per-thread plan cache; never shared across shards
use std::cell::RefCell;
use std::rc::Rc;

use crate::StatsError;

/// A complex number in Cartesian form.
///
/// A deliberately minimal type: only the operations the FFT needs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The complex number `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex { re: self.re, im: -self.im }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

/// Smallest power of two `>= n` (returns 1 for `n == 0`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Precomputed state for transforms of one power-of-two size.
///
/// The butterfly loop reads its roots of unity from a table built once at
/// plan construction instead of chaining complex multiplies per butterfly,
/// which removes both the trigonometry and the serial rounding drift of the
/// incremental recurrence from the inner loop. Plans are immutable and
/// cheap to share; [`plan_for`] memoizes one per size per thread.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// `twiddles[k] = e^{-2πik/n}` for `k < n/2` (forward direction; the
    /// inverse transform conjugates on the fly). Stage `len` reads the
    /// table at stride `n / len`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `n` is not a non-zero
    /// power of two.
    pub fn new(n: usize) -> Result<Self, StatsError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(StatsError::InvalidParameter {
                name: "n",
                reason: "FFT length must be a non-zero power of two",
            });
        }
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..n / 2)
            .map(|k| Complex::from_polar_unit(step * k as f64))
            .collect();
        Ok(FftPlan { n, twiddles })
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: a plan length is at least 1 by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The forward root of unity `e^{-2πik/n}` for `k < n/2`.
    ///
    /// Out-of-range indices return 1 (never reached by the transform; the
    /// total ordering keeps this branch-free for the caller).
    pub fn twiddle(&self, k: usize) -> Complex {
        self.twiddles.get(k).copied().unwrap_or(Complex::new(1.0, 0.0))
    }

    /// In-place forward FFT of `buf` using this plan's twiddle table.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `buf.len()` differs from
    /// the plan size.
    pub fn fft(&self, buf: &mut [Complex]) -> Result<(), StatsError> {
        self.transform(buf, false)
    }

    /// In-place inverse FFT of `buf` (including the `1/N` normalization).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `buf.len()` differs from
    /// the plan size.
    pub fn ifft(&self, buf: &mut [Complex]) -> Result<(), StatsError> {
        self.transform(buf, true)?;
        let n = buf.len() as f64;
        for z in buf.iter_mut() {
            z.re /= n;
            z.im /= n;
        }
        Ok(())
    }

    fn transform(&self, buf: &mut [Complex], inverse: bool) -> Result<(), StatsError> {
        let n = self.n;
        if buf.len() != n {
            return Err(StatsError::InvalidParameter {
                name: "buf",
                reason: "buffer length must match the plan size",
            });
        }
        if n == 1 {
            // A length-1 transform is the identity (and the bit-reversal
            // shift below would be undefined for 0 bits).
            return Ok(());
        }
        // Bit-reversal permutation.
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = (i.reverse_bits() >> (usize::BITS - bits)) as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
        // Butterflies; stage `len` walks the size-n twiddle table at
        // stride `n / len`, so `j * stride < n/2` always holds.
        let mut len = 2;
        while len <= n {
            let stride = n / len;
            for chunk in buf.chunks_exact_mut(len) {
                let (first, second) = chunk.split_at_mut(len / 2);
                for (j, (l, h)) in first.iter_mut().zip(second.iter_mut()).enumerate() {
                    let w = self.twiddle(j * stride);
                    let w = if inverse { w.conj() } else { w };
                    let u = *l;
                    let v = *h * w;
                    *l = u + v;
                    *h = u - v;
                }
            }
            len <<= 1;
        }
        Ok(())
    }
}

thread_local! {
    /// Per-thread plan cache indexed by `log2(size)`. Thread-local (rather
    /// than a shared lock) keeps the stats crate free of synchronization
    /// and makes plan reuse contention-free under the parallel runner.
    // lint:allow(shared-state) -- thread-local, so each shard owns its cache; no cross-shard mutable state exists here
    static PLAN_CACHE: RefCell<Vec<Option<Rc<FftPlan>>>> = const { RefCell::new(Vec::new()) };
}

/// The memoized per-thread plan for transforms of length `n`.
///
/// The first call for a given size builds the twiddle table; subsequent
/// calls on the same thread are an `O(1)` lookup.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `n` is not a non-zero power
/// of two.
pub fn plan_for(n: usize) -> Result<Rc<FftPlan>, StatsError> {
    if n == 0 || !n.is_power_of_two() {
        return Err(StatsError::InvalidParameter {
            name: "n",
            reason: "FFT length must be a non-zero power of two",
        });
    }
    let slot = n.trailing_zeros() as usize;
    PLAN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() <= slot {
            cache.resize(slot + 1, None);
        }
        if let Some(Some(plan)) = cache.get(slot) {
            return Ok(Rc::clone(plan));
        }
        let plan = Rc::new(FftPlan::new(n)?);
        if let Some(entry) = cache.get_mut(slot) {
            *entry = Some(Rc::clone(&plan));
        }
        Ok(plan)
    })
}

/// In-place forward FFT of `buf`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `buf.len()` is not a power
/// of two (zero-length included).
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), StatsError> {
    let plan = plan_for(buf.len()).map_err(|_| StatsError::InvalidParameter {
        name: "buf",
        reason: "FFT length must be a non-zero power of two",
    })?;
    plan.fft(buf)
}

/// In-place inverse FFT of `buf` (including the `1/N` normalization).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `buf.len()` is not a power
/// of two (zero-length included).
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), StatsError> {
    let plan = plan_for(buf.len()).map_err(|_| StatsError::InvalidParameter {
        name: "buf",
        reason: "FFT length must be a non-zero power of two",
    })?;
    plan.ifft(buf)
}

/// Forward FFT of a real signal, zero-padded to `padded_len` (which must be
/// a power of two at least `signal.len()`). Returns the full complex
/// spectrum of length `padded_len`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty signal and
/// [`StatsError::InvalidParameter`] if `padded_len` is not a power of two
/// or is shorter than the signal.
pub fn fft_real(signal: &[f64], padded_len: usize) -> Result<Vec<Complex>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !padded_len.is_power_of_two() || padded_len < signal.len() {
        return Err(StatsError::InvalidParameter {
            name: "padded_len",
            reason: "must be a power of two no smaller than the signal length",
        });
    }
    let mut buf: Vec<Complex> = Vec::with_capacity(padded_len);
    buf.extend(signal.iter().map(|&x| Complex::from(x)));
    buf.resize(padded_len, Complex::default());
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Forward FFT of a real signal zero-padded to `padded_len`, exploiting
/// conjugate symmetry: the even/odd samples are packed into a complex
/// signal of half the length, transformed with an `N/2`-point FFT, and
/// unpacked in `O(N)` — roughly half the work of [`fft_real`].
///
/// Returns only the unique half of the spectrum: bins `0..=padded_len/2`
/// (`padded_len/2 + 1` values). For `k > padded_len/2` the full spectrum
/// satisfies `X[k] = conj(X[padded_len - k])`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty signal and
/// [`StatsError::InvalidParameter`] if `padded_len` is not a power of two
/// or is shorter than the signal.
pub fn rfft(signal: &[f64], padded_len: usize) -> Result<Vec<Complex>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !padded_len.is_power_of_two() || padded_len < signal.len() {
        return Err(StatsError::InvalidParameter {
            name: "padded_len",
            reason: "must be a power of two no smaller than the signal length",
        });
    }
    if padded_len == 1 {
        return Ok(vec![Complex::from(signal.first().copied().unwrap_or(0.0))]);
    }
    let half = padded_len / 2;
    // Pack adjacent real samples into complex points: z[k] = x[2k] + i·x[2k+1]
    // (zero-padded past the end of the signal).
    let mut buf: Vec<Complex> = (0..half)
        .map(|k| {
            Complex::new(
                signal.get(2 * k).copied().unwrap_or(0.0),
                signal.get(2 * k + 1).copied().unwrap_or(0.0),
            )
        })
        .collect();
    plan_for(half)?.fft(&mut buf)?;
    // Unpack: with E/O the spectra of the even/odd sample streams,
    //   E[k] = (Z[k] + conj(Z[half-k])) / 2
    //   O[k] = (Z[k] - conj(Z[half-k])) / 2i
    //   X[k] = E[k] + w_N^k · O[k]
    // where w_N^k comes straight from the full-size plan's cached table.
    let full_plan = plan_for(padded_len)?;
    let z0 = buf.first().copied().unwrap_or_default();
    let mut out = Vec::with_capacity(half + 1);
    out.push(Complex::new(z0.re + z0.im, 0.0));
    for k in 1..half {
        let zk = buf.get(k).copied().unwrap_or_default();
        let zmk = buf.get(half - k).copied().unwrap_or_default().conj();
        let sum = zk + zmk;
        let diff = zk - zmk;
        let even = Complex::new(sum.re * 0.5, sum.im * 0.5);
        let odd = Complex::new(diff.im * 0.5, -diff.re * 0.5);
        out.push(even + full_plan.twiddle(k) * odd);
    }
    out.push(Complex::new(z0.re - z0.im, 0.0));
    Ok(out)
}

/// One bin of a periodogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Bin index `k` in the padded spectrum (1-based frequencies; bin 0,
    /// the DC component, is never reported).
    pub index: usize,
    /// Frequency in cycles per sample: `k / padded_len`.
    pub frequency: f64,
    /// Period in samples: `padded_len / k`.
    pub period: f64,
    /// Power `|X_k|²` of the bin.
    pub power: f64,
}

/// Computes the one-sided periodogram of a real signal after mean removal,
/// zero-padded by `pad_factor` (spectrum length is the next power of two of
/// `signal.len() * pad_factor`).
///
/// The mean is removed first so the DC bin does not dominate; bin 0 is
/// excluded from the output.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty signal and
/// [`StatsError::InvalidParameter`] if `pad_factor == 0`.
pub fn periodogram(signal: &[f64], pad_factor: usize) -> Result<Vec<SpectrumBin>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if pad_factor == 0 {
        return Err(StatsError::InvalidParameter {
            name: "pad_factor",
            reason: "zero-padding factor must be positive",
        });
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
    let padded = next_power_of_two(signal.len() * pad_factor);
    // The one-sided periodogram only needs bins 0..=padded/2, exactly what
    // the half-spectrum real transform produces.
    let spec = rfft(&centered, padded)?;
    let half = padded / 2;
    let mut bins = Vec::with_capacity(half.saturating_sub(1));
    for (k, z) in spec.iter().enumerate().take(half + 1).skip(1) {
        bins.push(SpectrumBin {
            index: k,
            frequency: k as f64 / padded as f64,
            period: padded as f64 / k as f64,
            power: z.norm_sqr(),
        });
    }
    Ok(bins)
}

/// The dominant bin of a periodogram: the bin with maximum power.
///
/// # Errors
///
/// Propagates errors from [`periodogram`]; additionally returns
/// [`StatsError::TooShort`] when the signal has fewer than 4 samples
/// (no meaningful spectrum).
pub fn dominant_frequency(signal: &[f64], pad_factor: usize) -> Result<SpectrumBin, StatsError> {
    if signal.len() < 4 {
        return Err(StatsError::TooShort { required: 4, actual: signal.len() });
    }
    let bins = periodogram(signal, pad_factor)?;
    bins.into_iter()
        .max_by(|a, b| a.power.total_cmp(&b.power))
        .ok_or(StatsError::EmptyInput)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64, amp: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * i as f64 / period + phase).sin())
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.abs() - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 3];
        assert!(fft_in_place(&mut buf).is_err());
        let mut empty: Vec<Complex> = Vec::new();
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn fft_of_length_one_is_identity() {
        let mut buf = vec![Complex::new(3.5, -1.25)];
        fft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.25));
        ifft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.25));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let signal: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = signal.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, round) in signal.iter().zip(&buf) {
            assert!((orig.re - round.re).abs() < 1e-9);
            assert!((orig.im - round.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let signal: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64).collect();
        let spec = fft_real(&signal, 16).unwrap();
        // Naive O(N²) DFT for cross-validation.
        for k in 0..16 {
            let mut acc = Complex::default();
            for (n, &x) in signal.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (k * n) as f64 / 16.0;
                acc = acc + Complex::from_polar_unit(theta) * Complex::from(x);
            }
            assert!((spec[k].re - acc.re).abs() < 1e-9, "bin {k} re");
            assert!((spec[k].im - acc.im).abs() < 1e-9, "bin {k} im");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin() * 2.0).collect();
        let spec = fft_real(&signal, 32).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn dominant_frequency_of_pure_sine() {
        // Period 16 over 128 samples → bin 8 of a length-128 spectrum.
        let signal = sine(128, 16.0, 3.0, 0.0);
        let dom = dominant_frequency(&signal, 1).unwrap();
        assert_eq!(dom.index, 8);
        assert!((dom.period - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_padding_refines_fractional_period() {
        // Period 13.5 is not a divisor of 64; padding by 8 localizes it.
        let signal = sine(64, 13.5, 1.0, 0.4);
        let dom = dominant_frequency(&signal, 8).unwrap();
        assert!(
            (dom.period - 13.5).abs() < 1.0,
            "expected ≈13.5, got {}",
            dom.period
        );
    }

    #[test]
    fn periodogram_excludes_dc() {
        // Large constant offset must not produce a DC-dominated answer.
        let signal: Vec<f64> = sine(64, 8.0, 1.0, 0.0).iter().map(|x| x + 100.0).collect();
        let dom = dominant_frequency(&signal, 1).unwrap();
        assert!((dom.period - 8.0).abs() < 1e-6);
    }

    #[test]
    fn rfft_matches_full_fft_half_spectrum() {
        for n in [2usize, 4, 8, 64, 256] {
            let signal: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 11) as f64 - 4.0).collect();
            let full = fft_real(&signal, n).unwrap();
            let half = rfft(&signal, n).unwrap();
            assert_eq!(half.len(), n / 2 + 1);
            for (k, z) in half.iter().enumerate() {
                assert!((z.re - full[k].re).abs() < 1e-9, "n={n} bin {k} re");
                assert!((z.im - full[k].im).abs() < 1e-9, "n={n} bin {k} im");
            }
        }
    }

    #[test]
    fn rfft_handles_padding_and_tiny_inputs() {
        // Signal shorter than the padded length.
        let signal = [1.0, -2.0, 3.0];
        let full = fft_real(&signal, 8).unwrap();
        let half = rfft(&signal, 8).unwrap();
        for k in 0..=4 {
            assert!((half[k].re - full[k].re).abs() < 1e-12);
            assert!((half[k].im - full[k].im).abs() < 1e-12);
        }
        // Degenerate sizes.
        assert_eq!(rfft(&[5.0], 1).unwrap(), vec![Complex::new(5.0, 0.0)]);
        let two = rfft(&[3.0, -1.0], 2).unwrap();
        assert_eq!(two, vec![Complex::new(2.0, 0.0), Complex::new(4.0, 0.0)]);
        assert!(rfft(&[], 4).is_err());
        assert!(rfft(&[1.0, 2.0, 3.0], 2).is_err());
        assert!(rfft(&[1.0], 3).is_err());
    }

    #[test]
    fn plan_cache_returns_shared_plans() {
        let a = plan_for(64).unwrap();
        let b = plan_for(64).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
        assert!(plan_for(0).is_err());
        assert!(plan_for(48).is_err());
    }

    #[test]
    fn plan_rejects_mismatched_buffer() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex::default(); 4];
        assert!(plan.fft(&mut buf).is_err());
        assert!(plan.ifft(&mut buf).is_err());
    }

    #[test]
    fn periodogram_rejects_bad_inputs() {
        assert!(periodogram(&[], 1).is_err());
        assert!(periodogram(&[1.0, 2.0], 0).is_err());
        assert!(matches!(
            dominant_frequency(&[1.0, 2.0, 3.0], 1),
            Err(StatsError::TooShort { .. })
        ));
    }
}
