//! Iterative radix-2 Cooley–Tukey FFT and periodogram.
//!
//! SDS/P locates candidate periods from the *dominant frequency* of the MA
//! time series — "the frequency that has the maximum amplitude ... equal to
//! the reciprocal of the period" (§4.2.2). The periodogram here supports
//! zero-padding, which interpolates the spectrum so that periods that are
//! not exact divisors of the window length can still be localized; the
//! residual bias is then removed by the ACF refinement step in
//! [`crate::period`].

use crate::StatsError;

/// A complex number in Cartesian form.
///
/// A deliberately minimal type: only the operations the FFT needs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The complex number `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(&self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex { re: self.re, im: -self.im }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

/// Smallest power of two `>= n` (returns 1 for `n == 0`).
pub fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT of `buf`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `buf.len()` is not a power
/// of two (zero-length included).
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), StatsError> {
    transform(buf, false)
}

/// In-place inverse FFT of `buf` (including the `1/N` normalization).
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if `buf.len()` is not a power
/// of two (zero-length included).
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), StatsError> {
    transform(buf, true)?;
    let n = buf.len() as f64;
    for z in buf.iter_mut() {
        z.re /= n;
        z.im /= n;
    }
    Ok(())
}

fn transform(buf: &mut [Complex], inverse: bool) -> Result<(), StatsError> {
    let n = buf.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(StatsError::InvalidParameter {
            name: "buf",
            reason: "FFT length must be a non-zero power of two",
        });
    }
    if n == 1 {
        // A length-1 transform is the identity (and the bit-reversal
        // shift below would be undefined for 0 bits).
        return Ok(());
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) as usize;
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for chunk in buf.chunks_exact_mut(len) {
            let (first, second) = chunk.split_at_mut(len / 2);
            let mut w = Complex::new(1.0, 0.0);
            for (l, h) in first.iter_mut().zip(second.iter_mut()) {
                let u = *l;
                let v = *h * w;
                *l = u + v;
                *h = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Forward FFT of a real signal, zero-padded to `padded_len` (which must be
/// a power of two at least `signal.len()`). Returns the full complex
/// spectrum of length `padded_len`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty signal and
/// [`StatsError::InvalidParameter`] if `padded_len` is not a power of two
/// or is shorter than the signal.
pub fn fft_real(signal: &[f64], padded_len: usize) -> Result<Vec<Complex>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !padded_len.is_power_of_two() || padded_len < signal.len() {
        return Err(StatsError::InvalidParameter {
            name: "padded_len",
            reason: "must be a power of two no smaller than the signal length",
        });
    }
    let mut buf: Vec<Complex> = Vec::with_capacity(padded_len);
    buf.extend(signal.iter().map(|&x| Complex::from(x)));
    buf.resize(padded_len, Complex::default());
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// One bin of a periodogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumBin {
    /// Bin index `k` in the padded spectrum (1-based frequencies; bin 0,
    /// the DC component, is never reported).
    pub index: usize,
    /// Frequency in cycles per sample: `k / padded_len`.
    pub frequency: f64,
    /// Period in samples: `padded_len / k`.
    pub period: f64,
    /// Power `|X_k|²` of the bin.
    pub power: f64,
}

/// Computes the one-sided periodogram of a real signal after mean removal,
/// zero-padded by `pad_factor` (spectrum length is the next power of two of
/// `signal.len() * pad_factor`).
///
/// The mean is removed first so the DC bin does not dominate; bin 0 is
/// excluded from the output.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty signal and
/// [`StatsError::InvalidParameter`] if `pad_factor == 0`.
pub fn periodogram(signal: &[f64], pad_factor: usize) -> Result<Vec<SpectrumBin>, StatsError> {
    if signal.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if pad_factor == 0 {
        return Err(StatsError::InvalidParameter {
            name: "pad_factor",
            reason: "zero-padding factor must be positive",
        });
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
    let padded = next_power_of_two(signal.len() * pad_factor);
    let spec = fft_real(&centered, padded)?;
    let half = padded / 2;
    let mut bins = Vec::with_capacity(half.saturating_sub(1));
    for (k, z) in spec.iter().enumerate().take(half + 1).skip(1) {
        bins.push(SpectrumBin {
            index: k,
            frequency: k as f64 / padded as f64,
            period: padded as f64 / k as f64,
            power: z.norm_sqr(),
        });
    }
    Ok(bins)
}

/// The dominant bin of a periodogram: the bin with maximum power.
///
/// # Errors
///
/// Propagates errors from [`periodogram`]; additionally returns
/// [`StatsError::TooShort`] when the signal has fewer than 4 samples
/// (no meaningful spectrum).
pub fn dominant_frequency(signal: &[f64], pad_factor: usize) -> Result<SpectrumBin, StatsError> {
    if signal.len() < 4 {
        return Err(StatsError::TooShort { required: 4, actual: signal.len() });
    }
    let bins = periodogram(signal, pad_factor)?;
    bins.into_iter()
        .max_by(|a, b| a.power.total_cmp(&b.power))
        .ok_or(StatsError::EmptyInput)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64, amp: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * i as f64 / period + phase).sin())
            .collect()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((a.abs() - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 3];
        assert!(fft_in_place(&mut buf).is_err());
        let mut empty: Vec<Complex> = Vec::new();
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn fft_of_length_one_is_identity() {
        let mut buf = vec![Complex::new(3.5, -1.25)];
        fft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.25));
        ifft_in_place(&mut buf).unwrap();
        assert_eq!(buf[0], Complex::new(3.5, -1.25));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let signal: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = signal.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (orig, round) in signal.iter().zip(&buf) {
            assert!((orig.re - round.re).abs() < 1e-9);
            assert!((orig.im - round.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let signal: Vec<f64> = (0..16).map(|i| ((i * i) % 7) as f64).collect();
        let spec = fft_real(&signal, 16).unwrap();
        // Naive O(N²) DFT for cross-validation.
        for k in 0..16 {
            let mut acc = Complex::default();
            for (n, &x) in signal.iter().enumerate() {
                let theta = -2.0 * std::f64::consts::PI * (k * n) as f64 / 16.0;
                acc = acc + Complex::from_polar_unit(theta) * Complex::from(x);
            }
            assert!((spec[k].re - acc.re).abs() < 1e-9, "bin {k} re");
            assert!((spec[k].im - acc.im).abs() < 1e-9, "bin {k} im");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin() * 2.0).collect();
        let spec = fft_real(&signal, 32).unwrap();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn dominant_frequency_of_pure_sine() {
        // Period 16 over 128 samples → bin 8 of a length-128 spectrum.
        let signal = sine(128, 16.0, 3.0, 0.0);
        let dom = dominant_frequency(&signal, 1).unwrap();
        assert_eq!(dom.index, 8);
        assert!((dom.period - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_padding_refines_fractional_period() {
        // Period 13.5 is not a divisor of 64; padding by 8 localizes it.
        let signal = sine(64, 13.5, 1.0, 0.4);
        let dom = dominant_frequency(&signal, 8).unwrap();
        assert!(
            (dom.period - 13.5).abs() < 1.0,
            "expected ≈13.5, got {}",
            dom.period
        );
    }

    #[test]
    fn periodogram_excludes_dc() {
        // Large constant offset must not produce a DC-dominated answer.
        let signal: Vec<f64> = sine(64, 8.0, 1.0, 0.0).iter().map(|x| x + 100.0).collect();
        let dom = dominant_frequency(&signal, 1).unwrap();
        assert!((dom.period - 8.0).abs() < 1e-6);
    }

    #[test]
    fn periodogram_rejects_bad_inputs() {
        assert!(periodogram(&[], 1).is_err());
        assert!(periodogram(&[1.0, 2.0], 0).is_err());
        assert!(matches!(
            dominant_frequency(&[1.0, 2.0, 3.0], 1),
            Err(StatsError::TooShort { .. })
        ));
    }
}
