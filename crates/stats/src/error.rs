use std::fmt;

/// Error type for every fallible operation in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// A window or series was empty where data was required.
    EmptyInput,
    /// A parameter was outside its valid domain.
    ///
    /// The payload names the parameter and describes the constraint that
    /// was violated.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// Two inputs that must have equal lengths did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input was too short for the requested operation.
    TooShort {
        /// Number of samples required.
        required: usize,
        /// Number of samples supplied.
        actual: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input series is empty"),
            StatsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input lengths differ: {left} vs {right}")
            }
            StatsError::TooShort { required, actual } => {
                write!(f, "input too short: need {required} samples, got {actual}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            StatsError::EmptyInput,
            StatsError::InvalidParameter { name: "alpha", reason: "must be in (0, 1)" },
            StatsError::LengthMismatch { left: 3, right: 4 },
            StatsError::TooShort { required: 8, actual: 2 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
