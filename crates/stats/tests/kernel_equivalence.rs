//! Equivalence proofs for the optimized kernels: every fast path must
//! agree with its reference implementation within [`approx_eq`] on both
//! seeded random inputs and the degenerate shapes (constant series, tiny
//! series, power-of-two ± 1 lengths) where index arithmetic goes wrong
//! first.
//!
//! * `rfft` (packed real-input FFT) vs `fft_real` (full complex FFT)
//! * `acf_fft` / the `acf` cost dispatcher vs `acf_direct`
//! * incremental `MovingAverage` / `Ewma` vs brute-force recomputation

use memdos_stats::acf::{acf, acf_direct, acf_fft};
use memdos_stats::fft::{fft_real, next_power_of_two, rfft};
use memdos_stats::float::approx_eq;
use memdos_stats::rng::Rng;
use memdos_stats::smoothing::{Ewma, MovingAverage};

/// Tight equivalence tolerance: the kernels differ only in summation
/// order, so they agree far below statistical noise.
const TOL: f64 = 1e-9;

/// Seeded test signals: gaussian noise around a slow sinusoid, so the
/// series has both correlation structure and full-spectrum content.
fn signal(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    (0..len)
        .map(|i| (i as f64 * 0.37).sin() * 3.0 + rng.gaussian(10.0, 2.5))
        .collect()
}

/// The degenerate lengths the suite sweeps alongside random ones:
/// tiny series and power-of-two ± 1 sizes.
const EDGE_LENGTHS: [usize; 8] = [1, 2, 3, 31, 32, 127, 128, 129];

#[test]
fn rfft_agrees_with_full_fft_on_random_and_edge_lengths() {
    for (case, len) in EDGE_LENGTHS.iter().chain(&[200, 500, 1000]).enumerate() {
        let x = signal(*len, 0xA5A5 + case as u64);
        let padded = next_power_of_two(*len);
        let reference = fft_real(&x, padded).expect("reference FFT");
        let half = rfft(&x, padded).expect("rfft");
        assert_eq!(half.len(), padded / 2 + 1, "len {len}: bin count");
        for (k, bin) in half.iter().enumerate() {
            let want = reference[k];
            assert!(
                approx_eq(bin.re, want.re, TOL) && approx_eq(bin.im, want.im, TOL),
                "len {len} bin {k}: rfft {bin:?} vs fft_real {want:?}"
            );
        }
    }
}

#[test]
fn rfft_agrees_on_constant_series() {
    let x = vec![7.25; 64];
    let reference = fft_real(&x, 64).expect("reference FFT");
    let half = rfft(&x, 64).expect("rfft");
    for (k, bin) in half.iter().enumerate() {
        assert!(
            approx_eq(bin.re, reference[k].re, TOL) && approx_eq(bin.im, reference[k].im, TOL),
            "constant series bin {k}"
        );
    }
}

fn assert_acf_matches(len: usize, max_lag: usize, seed: u64) {
    let x = signal(len, seed);
    let reference = acf_direct(&x, max_lag).expect("acf_direct");
    let fast = acf_fft(&x, max_lag).expect("acf_fft");
    let dispatched = acf(&x, max_lag).expect("acf dispatcher");
    assert_eq!(reference.len(), fast.len());
    assert_eq!(reference.len(), dispatched.len());
    for (k, (&want, (&got_fft, &got_acf))) in
        reference.iter().zip(fast.iter().zip(dispatched.iter())).enumerate()
    {
        assert!(
            approx_eq(got_fft, want, TOL),
            "len {len} lag {k}: acf_fft {got_fft} vs direct {want}"
        );
        assert!(
            approx_eq(got_acf, want, TOL),
            "len {len} lag {k}: acf {got_acf} vs direct {want}"
        );
    }
}

#[test]
fn acf_fft_and_dispatcher_agree_with_direct() {
    // Below and above the dispatcher's N·L work threshold, plus the
    // power-of-two ± 1 lengths where padding logic is most fragile.
    for (len, max_lag) in [(8, 4), (34, 21), (127, 40), (128, 40), (129, 40), (600, 150)] {
        assert_acf_matches(len, max_lag, 0xC0FFEE + len as u64);
    }
}

#[test]
fn acf_paths_agree_on_constant_series() {
    // Zero variance: both paths define the ACF as identically 1.
    let x = vec![3.5; 100];
    let reference = acf_direct(&x, 10).expect("acf_direct");
    let fast = acf_fft(&x, 10).expect("acf_fft");
    assert_eq!(reference, vec![1.0; 11]);
    assert_eq!(fast.len(), reference.len());
    for (k, &v) in fast.iter().enumerate() {
        assert!(approx_eq(v, 1.0, TOL), "constant acf_fft lag {k}: {v}");
    }
}

/// Brute-force moving average: recompute every emitted window mean from
/// scratch — the semantics the incremental kernel must preserve.
fn ma_reference(window: usize, step: usize, data: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    let mut count = 0u64;
    for end in window..=data.len() {
        count += 1;
        // The streaming kernel emits when (samples - window) % step == 0.
        if (count - 1) % step as u64 == 0 {
            let sum: f64 = data[end - window..end].iter().sum();
            out.push(sum / window as f64);
        }
    }
    out
}

#[test]
fn incremental_ma_agrees_with_recomputation() {
    for (window, step, len, seed) in
        [(5, 1, 200, 1u64), (21, 3, 500, 2), (100, 7, 1000, 3), (4, 4, 129, 4), (2, 1, 3, 5)]
    {
        let data = signal(len, 0xBEEF + seed);
        let fast = MovingAverage::apply(window, step, &data).expect("valid parameters");
        let want = ma_reference(window, step, &data);
        assert_eq!(fast.len(), want.len(), "w={window} s={step} n={len}: count");
        for (i, (&got, &exp)) in fast.iter().zip(&want).enumerate() {
            assert!(
                approx_eq(got, exp, TOL),
                "w={window} s={step} n={len} point {i}: incremental {got} vs recomputed {exp}"
            );
        }
    }
}

#[test]
fn incremental_ma_is_exact_on_constant_input() {
    // 7.25 is exactly representable: the running sum must not drift even
    // across many window turnovers.
    let data = vec![7.25; 5000];
    let out = MovingAverage::apply(32, 1, &data).expect("valid parameters");
    assert!(out.iter().all(|&v| v == 7.25), "constant input must stay exact");
}

#[test]
fn ewma_agrees_with_recurrence() {
    let data = signal(1000, 0xE3A);
    for alpha in [0.05, 0.2, 0.9] {
        let fast = Ewma::apply(alpha, &data).expect("valid alpha");
        let mut state = f64::NAN;
        for (i, &m) in data.iter().enumerate() {
            state = if i == 0 { m } else { alpha * m + (1.0 - alpha) * state };
            assert!(
                approx_eq(fast[i], state, TOL),
                "alpha {alpha} point {i}: {} vs {state}",
                fast[i]
            );
        }
    }
}
