//! Table-driven degenerate-input tests: every public entry point must
//! return an `Err` (or a well-defined empty/constant result) on empty,
//! undersized, or zero-variance input — never panic. These are the exact
//! inputs a detector sees at startup or during a quiet window.

use memdos_stats::acf::{acf_direct, acf_fft};
use memdos_stats::bounds::NormalRange;
use memdos_stats::fft::{fft_in_place, fft_real, periodogram, Complex};
use memdos_stats::ks::ks_two_sample;
use memdos_stats::period::detect_period;
use memdos_stats::series::{mean, quantile, std_dev, variance};
use memdos_stats::smoothing::{Ewma, MovingAverage};
use memdos_stats::StatsError;

/// Every empty-input case in one table: `(label, result-kind)` where the
/// closure runs the operation and reports whether it returned `Err`.
#[test]
fn empty_input_is_an_error_everywhere() {
    let empty: &[f64] = &[];
    let cases: Vec<(&str, Result<(), StatsError>)> = vec![
        ("mean", mean(empty).map(drop)),
        ("variance", variance(empty).map(drop)),
        ("std_dev", std_dev(empty).map(drop)),
        ("quantile", quantile(empty, 0.5).map(drop)),
        ("acf_direct", acf_direct(empty, 0).map(drop)),
        ("acf_fft", acf_fft(empty, 0).map(drop)),
        ("ks_ref_empty", ks_two_sample(empty, &[1.0]).map(drop)),
        ("ks_mon_empty", ks_two_sample(&[1.0], empty).map(drop)),
        ("fft_real", fft_real(empty, 8).map(drop)),
        ("periodogram", periodogram(empty, 1).map(drop)),
    ];
    for (label, result) in cases {
        assert!(result.is_err(), "{label}: empty input must be an error");
    }
}

/// A zero-length (or non-power-of-two) DFT buffer is a parameter error,
/// not a panic.
#[test]
fn zero_length_dft_is_an_error() {
    let mut empty: Vec<Complex> = Vec::new();
    assert!(matches!(
        fft_in_place(&mut empty),
        Err(StatsError::InvalidParameter { name: "len", .. })
            | Err(StatsError::InvalidParameter { .. })
    ));
    let mut three = vec![Complex::default(); 3];
    assert!(fft_in_place(&mut three).is_err());
}

/// A window larger than the series produces no smoothed points — the
/// stream simply has not completed a window yet.
#[test]
fn window_longer_than_series_yields_no_output() {
    let data = [1.0, 2.0, 3.0, 4.0];
    let out = MovingAverage::apply(10, 5, &data).expect("valid parameters");
    assert!(out.is_empty());
}

/// Degenerate smoothing parameters are rejected up front.
#[test]
fn invalid_smoothing_parameters_are_errors() {
    let cases: Vec<(&str, bool)> = vec![
        ("window=0", MovingAverage::new(0, 1).is_err()),
        ("step=0", MovingAverage::new(10, 0).is_err()),
        ("step>window", MovingAverage::new(10, 20).is_err()),
        ("alpha=0", Ewma::new(0.0).is_err()),
        ("alpha>1", Ewma::new(1.5).is_err()),
        ("alpha=NaN", Ewma::new(f64::NAN).is_err()),
    ];
    for (label, is_err) in cases {
        assert!(is_err, "{label}: must be rejected");
    }
}

/// An all-constant signal has zero variance. The ACF convention returns
/// all-ones, the σ=0 Chebyshev band collapses to a point, and the period
/// detector reports "no period" — none of them divide by zero or panic.
#[test]
fn all_constant_input_is_well_defined() {
    let constant = [5.0; 64];

    let acf = acf_direct(&constant, 8).expect("constant signal is valid input");
    assert!(acf.iter().all(|&r| (r - 1.0).abs() < 1e-12));

    let band = NormalRange::new(5.0, 0.0, 1.5).expect("sigma = 0 is a legal profile");
    assert!(!band.is_violation(5.0));
    assert!(band.is_violation(5.0 + 1e-6));

    let period = detect_period(&constant).expect("constant signal must not error");
    assert!(period.is_none(), "constant signal has no period: {period:?}");
}

/// `max_lag` at or past the series length is reported as `TooShort` with
/// the exact requirement.
#[test]
fn acf_lag_beyond_series_is_too_short() {
    let short = [1.0, 2.0, 3.0];
    for f in [acf_direct, acf_fft] {
        match f(&short, 3) {
            Err(StatsError::TooShort { required, actual }) => {
                assert_eq!((required, actual), (4, 3));
            }
            other => panic!("expected TooShort, got {other:?}"),
        }
    }
}

/// The period detector refuses signals shorter than its 8-sample floor.
#[test]
fn period_detector_rejects_tiny_signals() {
    for n in 0..8 {
        let signal = vec![1.0; n];
        assert!(
            matches!(detect_period(&signal), Err(StatsError::TooShort { .. })),
            "length {n} must be TooShort"
        );
    }
}
