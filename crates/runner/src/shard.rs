//! Persistent sharded worker pool with reusable batch buffers.
//!
//! [`parallel_map_owned`](crate::parallel_map_owned) pays a full
//! thread-spawn/join cycle and a fresh set of allocations per call —
//! fine for a coarse experiment grid, ruinous for a streaming engine
//! that dispatches a batch every few hundred samples. [`ShardPool`]
//! amortises both costs:
//!
//! * **threads persist** — workers are spawned once and park on a job
//!   channel between rounds, so a round costs two channel hops instead
//!   of a spawn/join;
//! * **buffers cycle** — the shard `Vec`s that carry items out and
//!   results back are recycled round over round, so the steady state
//!   allocates nothing;
//! * **items return in input order** — each item travels tagged with
//!   its input index and is restored to its original position, so a
//!   caller that owns long-lived stateful items (the engine's session
//!   table) sees them permuted by *nothing*.
//!
//! Results are appended in shard-completion order, which is
//! scheduling-dependent; callers needing a deterministic stream must
//! impose their own total order (the engine sorts events by a unique
//! `(seq, sub)` key, which makes the completion order unobservable).

use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One round-trip unit: a slice of the caller's items (tagged with
/// their input indices) and the results produced from them.
struct Shard<T, R> {
    items: Vec<(usize, T)>,
    out: Vec<R>,
}

impl<T, R> Shard<T, R> {
    fn new() -> Self {
        Shard { items: Vec::new(), out: Vec::new() }
    }
}

/// A persistent pool of workers that repeatedly runs a fixed `step`
/// function over the caller's owned items — see the module docs.
pub struct ShardPool<T, R> {
    txs: Vec<mpsc::Sender<Shard<T, R>>>,
    res_rx: mpsc::Receiver<Shard<T, R>>,
    handles: Vec<JoinHandle<()>>,
    /// Recycled shard buffers (both `Vec`s retain their capacity).
    spare: Vec<Shard<T, R>>,
    /// Recycled order-restoration scratch.
    restore: Vec<Option<T>>,
    /// The caller's step function, kept for the inline fallback when a
    /// worker cannot accept a shard.
    step: Box<dyn Fn(&mut T, &mut Vec<R>) + Send + Sync>,
}

impl<T, R> ShardPool<T, R>
where
    T: Send + 'static,
    R: Send + 'static,
{
    /// Spawns `workers` (floored at 1) persistent worker threads, each
    /// running `step` over every item of every shard it receives.
    pub fn new<F>(workers: usize, step: F) -> Self
    where
        F: Fn(&mut T, &mut Vec<R>) + Send + Sync + Clone + 'static,
    {
        let workers = workers.max(1);
        let (res_tx, res_rx) = mpsc::channel::<Shard<T, R>>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Shard<T, R>>();
            txs.push(tx);
            let res = res_tx.clone();
            let step = step.clone();
            handles.push(std::thread::spawn(move || {
                for mut shard in rx {
                    for (_, item) in shard.items.iter_mut() {
                        step(item, &mut shard.out);
                    }
                    // The pool dropping its receiver mid-round means the
                    // round's results are unwanted; exit quietly.
                    if res.send(shard).is_err() {
                        break;
                    }
                }
            }));
        }
        // Workers hold the only result senders, so `res_rx` disconnects
        // exactly when every worker has exited.
        drop(res_tx);
        ShardPool {
            txs,
            res_rx,
            handles,
            spare: Vec::new(),
            restore: Vec::new(),
            step: Box::new(step),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Runs one round: every item of `items` is stepped exactly once
    /// (round-robin sharded across the workers), results are appended
    /// to `out`, and `items` comes back in its original order.
    ///
    /// Results arrive in shard-completion order — impose a total order
    /// downstream if the output must be deterministic.
    pub fn run_sharded(&mut self, items: &mut Vec<T>, out: &mut Vec<R>) {
        let n = items.len();
        if n == 0 {
            return;
        }
        let workers = self.txs.len().min(n);
        if workers <= 1 {
            // One shard would serialise through a worker anyway; step
            // inline and skip the channel round-trip.
            for item in items.iter_mut() {
                (self.step)(item, out);
            }
            return;
        }
        let mut shards: Vec<Shard<T, R>> = Vec::with_capacity(workers);
        while shards.len() < workers {
            shards.push(self.spare.pop().unwrap_or_else(Shard::new));
        }
        for (i, item) in items.drain(..).enumerate() {
            if let Some(shard) = shards.get_mut(i % workers) {
                shard.items.push((i, item));
            }
        }
        let mut pending = 0usize;
        let mut done: Vec<Shard<T, R>> = Vec::with_capacity(workers);
        for (tx, shard) in self.txs.iter().zip(shards) {
            match tx.send(shard) {
                Ok(()) => pending += 1,
                Err(mpsc::SendError(mut shard)) => {
                    // The worker is gone (see the liveness note below);
                    // keep the round lossless by stepping inline.
                    for (_, item) in shard.items.iter_mut() {
                        (self.step)(item, &mut shard.out);
                    }
                    done.push(shard);
                }
            }
        }
        while pending > 0 {
            match self.res_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(shard) => {
                    done.push(shard);
                    pending -= 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers only exit when the pool closes their job
                    // channel — unless `step` panicked. That shard's
                    // items are unrecoverable, and continuing with a
                    // truncated item set would silently corrupt the
                    // caller's state; mirror the panic-propagation of
                    // `std::thread::scope` and die loudly. A merely
                    // *slow* step is fine: the timeout only re-arms the
                    // liveness check.
                    if self.handles.iter().any(|h| h.is_finished()) {
                        std::process::abort();
                    }
                }
                // Every worker exited mid-round: the same corruption
                // argument as above, with no survivors to wait for.
                Err(mpsc::RecvTimeoutError::Disconnected) => std::process::abort(),
            }
        }
        // Restore input order from the index tags, reusing the scratch,
        // then recycle the emptied shard buffers for the next round.
        self.restore.clear();
        self.restore.resize_with(n, || None);
        for shard in done.iter_mut() {
            out.append(&mut shard.out);
            for (i, item) in shard.items.drain(..) {
                if let Some(slot) = self.restore.get_mut(i) {
                    *slot = Some(item);
                }
            }
        }
        self.spare.extend(done);
        items.extend(self.restore.drain(..).flatten());
    }
}

impl<T, R> Drop for ShardPool<T, R> {
    fn drop(&mut self) {
        // Closing the job channels ends every worker's receive loop.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T, R> std::fmt::Debug for ShardPool<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.txs.len())
            .field("spare", &self.spare.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_come_back_in_input_order() {
        let mut pool: ShardPool<u64, u64> =
            ShardPool::new(4, |item: &mut u64, out: &mut Vec<u64>| {
                out.push(*item * 10);
                *item += 1;
            });
        let mut items: Vec<u64> = (0..57).collect();
        let mut out = Vec::new();
        pool.run_sharded(&mut items, &mut out);
        let expected: Vec<u64> = (1..58).collect();
        assert_eq!(items, expected, "items must return in input order, each stepped once");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = (0..57).map(|i| i * 10).collect();
        assert_eq!(sorted, want, "every item produced its result exactly once");
    }

    #[test]
    fn rounds_reuse_the_pool_and_buffers() {
        let mut pool: ShardPool<u64, u64> =
            ShardPool::new(3, |item: &mut u64, out: &mut Vec<u64>| out.push(*item));
        let mut items: Vec<u64> = (0..16).collect();
        for round in 0..50u64 {
            let mut out = Vec::new();
            pool.run_sharded(&mut items, &mut out);
            assert_eq!(out.len(), 16, "round {round}");
            assert_eq!(items.len(), 16, "round {round}");
        }
        // Buffers were recycled: at most one shard set is parked.
        assert!(pool.spare.len() <= 3);
    }

    #[test]
    fn degenerate_shapes_work() {
        let mut pool: ShardPool<u64, u64> =
            ShardPool::new(8, |item: &mut u64, out: &mut Vec<u64>| out.push(*item));
        let mut empty: Vec<u64> = Vec::new();
        let mut out = Vec::new();
        pool.run_sharded(&mut empty, &mut out);
        assert!(out.is_empty());
        // More workers than items.
        let mut tiny = vec![7u64, 8];
        pool.run_sharded(&mut tiny, &mut out);
        assert_eq!(tiny, vec![7, 8]);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![7, 8]);
        // Zero workers floors to one.
        let mut single: ShardPool<u64, u64> =
            ShardPool::new(0, |item: &mut u64, out: &mut Vec<u64>| out.push(*item));
        assert_eq!(single.workers(), 1);
        let mut items = vec![1u64, 2, 3];
        let mut out = Vec::new();
        single.run_sharded(&mut items, &mut out);
        assert_eq!(out, vec![1, 2, 3], "single worker steps inline, in order");
    }

    #[test]
    fn stateful_items_accumulate_across_rounds() {
        // The engine's shape: long-lived stateful items (sessions)
        // stepped every round, with results merged downstream.
        struct Counter {
            id: usize,
            ticks: u64,
        }
        let mut pool: ShardPool<Counter, (usize, u64)> =
            ShardPool::new(4, |c: &mut Counter, out: &mut Vec<(usize, u64)>| {
                c.ticks += 1;
                out.push((c.id, c.ticks));
            });
        let mut items: Vec<Counter> =
            (0..10).map(|id| Counter { id, ticks: 0 }).collect();
        let mut out = Vec::new();
        for _ in 0..20 {
            pool.run_sharded(&mut items, &mut out);
        }
        for (i, c) in items.iter().enumerate() {
            assert_eq!(c.id, i, "order preserved");
            assert_eq!(c.ticks, 20, "every round stepped every item once");
        }
        assert_eq!(out.len(), 200);
    }
}
