//! Persistent sharded worker pool with reusable batch buffers.
//!
//! [`parallel_map_owned`](crate::parallel_map_owned) pays a full
//! thread-spawn/join cycle and a fresh set of allocations per call —
//! fine for a coarse experiment grid, ruinous for a streaming engine
//! that dispatches a batch every few hundred samples. [`ShardPool`]
//! amortises both costs:
//!
//! * **threads persist** — workers are spawned once and park on a job
//!   channel between rounds, so a round costs two channel hops instead
//!   of a spawn/join;
//! * **buffers cycle** — the shard `Vec`s that carry items out and
//!   results back are recycled round over round, so the steady state
//!   allocates nothing;
//! * **items return in input order** — each item travels tagged with
//!   its input index and is restored to its original position, so a
//!   caller that owns long-lived stateful items (the engine's session
//!   table) sees them permuted by *nothing*.
//!
//! Results are appended in shard-completion order, which is
//! scheduling-dependent; callers needing a deterministic stream must
//! impose their own total order (the engine sorts events by a unique
//! `(seq, sub)` key, which makes the completion order unobservable).
//!
//! # Per-shard finish hook and sorted runs
//!
//! A pool built with [`ShardPool::with_finish`] runs a caller-supplied
//! closure over each shard's result buffer *on the worker that filled
//! it*, before the shard travels back. The intended use is a per-shard
//! sort: with a comparison key that is globally unique, K pre-sorted
//! runs can be combined by a K-way merge instead of a monolithic
//! `sort` over the concatenation, moving `O(n log n)` work off the
//! single-threaded merge step and onto the workers. The runs
//! themselves are handed back by [`ShardPool::run_sharded_runs`],
//! which recycles the caller's run buffers round over round.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-shard post-processing hook, applied by the worker that produced
/// the shard's results (and by the inline fallbacks, so behaviour is
/// identical whether or not a thread was involved).
type FinishFn<R> = Arc<dyn Fn(&mut Vec<R>) + Send + Sync>;

/// One round-trip unit: a slice of the caller's items (tagged with
/// their input indices) and the results produced from them.
struct Shard<T, R> {
    items: Vec<(usize, T)>,
    out: Vec<R>,
}

impl<T, R> Shard<T, R> {
    fn new() -> Self {
        Shard { items: Vec::new(), out: Vec::new() }
    }
}

/// A persistent pool of workers that repeatedly runs a fixed `step`
/// function over the caller's owned items — see the module docs.
pub struct ShardPool<T, R> {
    txs: Vec<mpsc::Sender<Shard<T, R>>>,
    res_rx: mpsc::Receiver<Shard<T, R>>,
    handles: Vec<JoinHandle<()>>,
    /// Recycled shard buffers (both `Vec`s retain their capacity).
    spare: Vec<Shard<T, R>>,
    /// Recycled run buffers for [`run_sharded_runs`](Self::run_sharded_runs).
    spare_outs: Vec<Vec<R>>,
    /// Recycled order-restoration scratch.
    restore: Vec<Option<T>>,
    /// The caller's step function, kept for the inline fallback when a
    /// worker cannot accept a shard.
    step: Box<dyn Fn(&mut T, &mut Vec<R>) + Send + Sync>,
    /// Optional per-shard finish hook (see module docs).
    finish: Option<FinishFn<R>>,
}

impl<T, R> ShardPool<T, R>
where
    T: Send + 'static,
    R: Send + 'static,
{
    /// Spawns `workers` (floored at 1) persistent worker threads, each
    /// running `step` over every item of every shard it receives.
    pub fn new<F>(workers: usize, step: F) -> Self
    where
        F: Fn(&mut T, &mut Vec<R>) + Send + Sync + Clone + 'static,
    {
        Self::build(workers, step, None)
    }

    /// Like [`new`](Self::new), but additionally runs `finish` over
    /// each shard's result buffer on the worker that filled it. Pair
    /// with [`run_sharded_runs`](Self::run_sharded_runs) and a sorting
    /// `finish` to get pre-sorted runs for a downstream K-way merge.
    pub fn with_finish<F, G>(workers: usize, step: F, finish: G) -> Self
    where
        F: Fn(&mut T, &mut Vec<R>) + Send + Sync + Clone + 'static,
        G: Fn(&mut Vec<R>) + Send + Sync + 'static,
    {
        Self::build(workers, step, Some(Arc::new(finish)))
    }

    fn build<F>(workers: usize, step: F, finish: Option<FinishFn<R>>) -> Self
    where
        F: Fn(&mut T, &mut Vec<R>) + Send + Sync + Clone + 'static,
    {
        let workers = workers.max(1);
        let (res_tx, res_rx) = mpsc::channel::<Shard<T, R>>();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Shard<T, R>>();
            txs.push(tx);
            let res = res_tx.clone();
            let step = step.clone();
            let finish = finish.clone();
            handles.push(std::thread::spawn(move || {
                for mut shard in rx {
                    for (_, item) in shard.items.iter_mut() {
                        step(item, &mut shard.out);
                    }
                    if let Some(f) = finish.as_ref() {
                        f(&mut shard.out);
                    }
                    // The pool dropping its receiver mid-round means the
                    // round's results are unwanted; exit quietly.
                    if res.send(shard).is_err() {
                        break;
                    }
                }
            }));
        }
        // Workers hold the only result senders, so `res_rx` disconnects
        // exactly when every worker has exited.
        drop(res_tx);
        ShardPool {
            txs,
            res_rx,
            handles,
            spare: Vec::new(),
            spare_outs: Vec::new(),
            restore: Vec::new(),
            step: Box::new(step),
            finish,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Runs one round: every item of `items` is stepped exactly once
    /// (round-robin sharded across the workers), results are appended
    /// to `out`, and `items` comes back in its original order.
    ///
    /// Results arrive in shard-completion order — impose a total order
    /// downstream if the output must be deterministic.
    pub fn run_sharded(&mut self, items: &mut Vec<T>, out: &mut Vec<R>) {
        let n = items.len();
        if n == 0 {
            return;
        }
        let workers = self.txs.len().min(n);
        if workers <= 1 {
            // One shard would serialise through a worker anyway; step
            // inline and skip the channel round-trip. Route through a
            // recycled buffer so a finish hook sees exactly this
            // round's results, as a worker would have.
            let mut run = self.spare_outs.pop().unwrap_or_default();
            for item in items.iter_mut() {
                (self.step)(item, &mut run);
            }
            if let Some(f) = self.finish.as_ref() {
                f(&mut run);
            }
            out.append(&mut run);
            self.spare_outs.push(run);
            return;
        }
        let mut done = self.dispatch_round(items, workers);
        for shard in done.iter_mut() {
            out.append(&mut shard.out);
        }
        self.restore_items(n, &mut done, items);
        self.spare.extend(done);
    }

    /// Runs one round like [`run_sharded`](Self::run_sharded), but
    /// hands each shard's result buffer back whole, as one *run* in
    /// `runs`, instead of concatenating them. With a pool built via
    /// [`with_finish`](Self::with_finish) and a sorting hook, every
    /// run arrives pre-sorted and the caller can K-way merge.
    ///
    /// Buffers already in `runs` are recycled as this round's shard
    /// outputs (cleared first), so a caller that feeds its run vector
    /// back in each round allocates nothing in the steady state. Runs
    /// are pushed in shard-completion order and may be empty.
    pub fn run_sharded_runs(&mut self, items: &mut Vec<T>, runs: &mut Vec<Vec<R>>) {
        for mut run in runs.drain(..) {
            run.clear();
            self.spare_outs.push(run);
        }
        let n = items.len();
        if n == 0 {
            return;
        }
        let workers = self.txs.len().min(n);
        if workers <= 1 {
            let mut run = self.spare_outs.pop().unwrap_or_default();
            for item in items.iter_mut() {
                (self.step)(item, &mut run);
            }
            if let Some(f) = self.finish.as_ref() {
                f(&mut run);
            }
            runs.push(run);
            return;
        }
        let mut done = self.dispatch_round(items, workers);
        for shard in done.iter_mut() {
            let fresh = self.spare_outs.pop().unwrap_or_default();
            runs.push(std::mem::replace(&mut shard.out, fresh));
        }
        self.restore_items(n, &mut done, items);
        self.spare.extend(done);
    }

    /// Shards `items` round-robin, ships the shards to the workers and
    /// collects them back (stepping inline if a worker is gone).
    /// Returned shards still carry their index-tagged items.
    fn dispatch_round(&mut self, items: &mut Vec<T>, workers: usize) -> Vec<Shard<T, R>> {
        let mut shards: Vec<Shard<T, R>> = Vec::with_capacity(workers);
        while shards.len() < workers {
            shards.push(self.spare.pop().unwrap_or_else(Shard::new));
        }
        for (i, item) in items.drain(..).enumerate() {
            if let Some(shard) = shards.get_mut(i % workers) {
                shard.items.push((i, item));
            }
        }
        let mut pending = 0usize;
        let mut done: Vec<Shard<T, R>> = Vec::with_capacity(workers);
        for (tx, shard) in self.txs.iter().zip(shards) {
            match tx.send(shard) {
                Ok(()) => pending += 1,
                Err(mpsc::SendError(mut shard)) => {
                    // The worker is gone (see the liveness note below);
                    // keep the round lossless by stepping inline.
                    for (_, item) in shard.items.iter_mut() {
                        (self.step)(item, &mut shard.out);
                    }
                    if let Some(f) = self.finish.as_ref() {
                        f(&mut shard.out);
                    }
                    done.push(shard);
                }
            }
        }
        while pending > 0 {
            match self.res_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(shard) => {
                    done.push(shard);
                    pending -= 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers only exit when the pool closes their job
                    // channel — unless `step` panicked. That shard's
                    // items are unrecoverable, and continuing with a
                    // truncated item set would silently corrupt the
                    // caller's state; mirror the panic-propagation of
                    // `std::thread::scope` and die loudly. A merely
                    // *slow* step is fine: the timeout only re-arms the
                    // liveness check.
                    if self.handles.iter().any(|h| h.is_finished()) {
                        std::process::abort();
                    }
                }
                // Every worker exited mid-round: the same corruption
                // argument as above, with no survivors to wait for.
                Err(mpsc::RecvTimeoutError::Disconnected) => std::process::abort(),
            }
        }
        done
    }

    /// Restores `items` to input order from the index tags carried by
    /// `done`, reusing the restoration scratch.
    fn restore_items(&mut self, n: usize, done: &mut Vec<Shard<T, R>>, items: &mut Vec<T>) {
        self.restore.clear();
        self.restore.resize_with(n, || None);
        for shard in done.iter_mut() {
            for (i, item) in shard.items.drain(..) {
                if let Some(slot) = self.restore.get_mut(i) {
                    *slot = Some(item);
                }
            }
        }
        items.extend(self.restore.drain(..).flatten());
    }
}

impl<T, R> Drop for ShardPool<T, R> {
    fn drop(&mut self) {
        // Closing the job channels ends every worker's receive loop.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<T, R> std::fmt::Debug for ShardPool<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.txs.len())
            .field("spare", &self.spare.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_come_back_in_input_order() {
        let mut pool: ShardPool<u64, u64> =
            ShardPool::new(4, |item: &mut u64, out: &mut Vec<u64>| {
                out.push(*item * 10);
                *item += 1;
            });
        let mut items: Vec<u64> = (0..57).collect();
        let mut out = Vec::new();
        pool.run_sharded(&mut items, &mut out);
        let expected: Vec<u64> = (1..58).collect();
        assert_eq!(items, expected, "items must return in input order, each stepped once");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        let want: Vec<u64> = (0..57).map(|i| i * 10).collect();
        assert_eq!(sorted, want, "every item produced its result exactly once");
    }

    #[test]
    fn rounds_reuse_the_pool_and_buffers() {
        let mut pool: ShardPool<u64, u64> =
            ShardPool::new(3, |item: &mut u64, out: &mut Vec<u64>| out.push(*item));
        let mut items: Vec<u64> = (0..16).collect();
        for round in 0..50u64 {
            let mut out = Vec::new();
            pool.run_sharded(&mut items, &mut out);
            assert_eq!(out.len(), 16, "round {round}");
            assert_eq!(items.len(), 16, "round {round}");
        }
        // Buffers were recycled: at most one shard set is parked.
        assert!(pool.spare.len() <= 3);
    }

    #[test]
    fn degenerate_shapes_work() {
        let mut pool: ShardPool<u64, u64> =
            ShardPool::new(8, |item: &mut u64, out: &mut Vec<u64>| out.push(*item));
        let mut empty: Vec<u64> = Vec::new();
        let mut out = Vec::new();
        pool.run_sharded(&mut empty, &mut out);
        assert!(out.is_empty());
        // More workers than items.
        let mut tiny = vec![7u64, 8];
        pool.run_sharded(&mut tiny, &mut out);
        assert_eq!(tiny, vec![7, 8]);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![7, 8]);
        // Zero workers floors to one.
        let mut single: ShardPool<u64, u64> =
            ShardPool::new(0, |item: &mut u64, out: &mut Vec<u64>| out.push(*item));
        assert_eq!(single.workers(), 1);
        let mut items = vec![1u64, 2, 3];
        let mut out = Vec::new();
        single.run_sharded(&mut items, &mut out);
        assert_eq!(out, vec![1, 2, 3], "single worker steps inline, in order");
    }

    #[test]
    fn stateful_items_accumulate_across_rounds() {
        // The engine's shape: long-lived stateful items (sessions)
        // stepped every round, with results merged downstream.
        struct Counter {
            id: usize,
            ticks: u64,
        }
        let mut pool: ShardPool<Counter, (usize, u64)> =
            ShardPool::new(4, |c: &mut Counter, out: &mut Vec<(usize, u64)>| {
                c.ticks += 1;
                out.push((c.id, c.ticks));
            });
        let mut items: Vec<Counter> =
            (0..10).map(|id| Counter { id, ticks: 0 }).collect();
        let mut out = Vec::new();
        for _ in 0..20 {
            pool.run_sharded(&mut items, &mut out);
        }
        for (i, c) in items.iter().enumerate() {
            assert_eq!(c.id, i, "order preserved");
            assert_eq!(c.ticks, 20, "every round stepped every item once");
        }
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn finish_hook_sorts_each_shard_run() {
        // Each item emits a tagged result; the finish hook sorts the
        // shard's buffer, so every returned run must be sorted even
        // though items hit the shard in round-robin order.
        let mut pool: ShardPool<u64, u64> = ShardPool::with_finish(
            4,
            |item: &mut u64, out: &mut Vec<u64>| out.push(1000 - *item),
            |run: &mut Vec<u64>| run.sort_unstable(),
        );
        let mut items: Vec<u64> = (0..97).collect();
        let mut runs: Vec<Vec<u64>> = Vec::new();
        pool.run_sharded_runs(&mut items, &mut runs);
        assert_eq!(items, (0..97).collect::<Vec<u64>>(), "input order preserved");
        assert!(!runs.is_empty() && runs.len() <= 4);
        let mut all = Vec::new();
        for run in &runs {
            assert!(run.windows(2).all(|w| w[0] <= w[1]), "each run pre-sorted");
            all.extend_from_slice(run);
        }
        all.sort_unstable();
        let want: Vec<u64> = (0..97).map(|i| 1000 - i).rev().collect();
        assert_eq!(all, want, "no result lost or duplicated across runs");
    }

    #[test]
    fn run_buffers_recycle_across_rounds() {
        let mut pool: ShardPool<u64, u64> = ShardPool::with_finish(
            3,
            |item: &mut u64, out: &mut Vec<u64>| out.push(*item),
            |run: &mut Vec<u64>| run.sort_unstable(),
        );
        let mut items: Vec<u64> = (0..24).collect();
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for round in 0..40u64 {
            pool.run_sharded_runs(&mut items, &mut runs);
            let total: usize = runs.iter().map(Vec::len).sum();
            assert_eq!(total, 24, "round {round}");
        }
        // Feeding `runs` back each round caps the parked buffers.
        assert!(pool.spare_outs.len() <= 4);
    }

    #[test]
    fn single_worker_runs_path_matches_inline() {
        let mut pool: ShardPool<u64, u64> = ShardPool::with_finish(
            1,
            |item: &mut u64, out: &mut Vec<u64>| out.push(100 - *item),
            |run: &mut Vec<u64>| run.sort_unstable(),
        );
        let mut items: Vec<u64> = (0..9).collect();
        let mut runs: Vec<Vec<u64>> = Vec::new();
        pool.run_sharded_runs(&mut items, &mut runs);
        assert_eq!(runs.len(), 1, "one worker produces one run");
        let run = runs.first().cloned().unwrap_or_default();
        assert_eq!(run, (92..=100).collect::<Vec<u64>>(), "finish applied inline");
    }
}
