//! # memdos-runner
//!
//! Std-only parallel experiment engine. The paper's evaluation (§5) is a
//! (scheme × application × attack × run) grid of independent simulations;
//! this crate fans that grid out across worker threads with a
//! channel-based work queue built from `std::thread::scope` — no external
//! dependencies, per workspace policy.
//!
//! ## Determinism guarantee
//!
//! Parallel output is **bit-identical** to sequential output, regardless
//! of worker count or scheduling:
//!
//! * every cell's seed derives only from `(base seed, run index)` via
//!   `memdos_stats::rng::derive_seed` (through
//!   `ExperimentConfig::run_seed`), never from execution order;
//! * each cell runs on its own simulator instance, so cells share no
//!   mutable state; and
//! * results are collected tagged with their input index and re-assembled
//!   in input order, so downstream aggregation sees the exact sequence a
//!   sequential loop would have produced.
//!
//! `tests/parallel_determinism.rs` (tier-1) pins this: the full grid's
//! formatted results are byte-identical across 1, 2 and 8 workers and
//! across repeated runs.
//!
//! ## Worker count
//!
//! [`threads`] reads the `MEMDOS_THREADS` environment variable, falling
//! back to the machine's available parallelism. An invalid value (not a
//! positive integer) also falls back, and [`threads_config`] reports the
//! problem as a diagnostic string so long-running callers (the engine
//! binary, xtask) can surface it once instead of silently ignoring the
//! variable. Each experiment cell is single-threaded and simulates
//! ~60 s of cloud time per wall-clock second per core, so grid
//! throughput scales near-linearly until the cell count or the core
//! count is exhausted.

#![forbid(unsafe_code)]

pub mod shard;

pub use shard::ShardPool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use memdos_attacks::AttackKind;
use memdos_core::CoreError;
use memdos_metrics::experiment::{CapturedRun, ExperimentConfig, RunOutcome, StageConfig};
use memdos_workloads::catalog::Application;

/// The resolved worker count plus any configuration diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadsSelection {
    /// Worker count to use (always >= 1).
    pub workers: usize,
    /// Human-readable description of an ignored `MEMDOS_THREADS` value,
    /// when the variable was set but not a positive integer. Callers
    /// with a user-facing surface should print this once.
    pub diagnostic: Option<String>,
}

/// Resolves the worker count from `MEMDOS_THREADS`, reporting invalid
/// values instead of silently swallowing them.
///
/// A set-but-invalid value (unparsable, or `0`) falls back to the
/// machine's available parallelism and fills `diagnostic`.
pub fn threads_config() -> ThreadsSelection {
    let fallback = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("MEMDOS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => ThreadsSelection { workers: n, diagnostic: None },
            Ok(_) => ThreadsSelection {
                workers: fallback(),
                diagnostic: Some(
                    "MEMDOS_THREADS=0 is invalid (must be a positive integer); \
                     falling back to available parallelism"
                        .to_string(),
                ),
            },
            Err(_) => ThreadsSelection {
                workers: fallback(),
                diagnostic: Some(format!(
                    "MEMDOS_THREADS={v:?} is not a positive integer; \
                     falling back to available parallelism"
                )),
            },
        },
        Err(_) => ThreadsSelection { workers: fallback(), diagnostic: None },
    }
}

/// Worker count: `MEMDOS_THREADS` when set to a positive integer, else
/// the machine's available parallelism (1 if that cannot be determined).
/// Invalid values fall back silently here — use [`threads_config`] to
/// surface the diagnostic.
pub fn threads() -> usize {
    threads_config().workers
}

/// The machine's available parallelism (1 when it cannot be
/// determined), independent of `MEMDOS_THREADS`.
///
/// Use this to *clamp* a requested worker count for CPU-bound pools:
/// oversubscribing cores buys no concurrency, only scheduling latency
/// and channel round-trips, so `requested.min(cores())` is the widest
/// pool worth spawning. Output must never depend on the value —
/// callers' determinism contracts already guarantee worker-count
/// invariance.
pub fn cores() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Monotonic nanoseconds since an arbitrary process-local origin.
///
/// Lives here because wall-clock access is reserved for the harness
/// crates (lint rule L2): deterministic crates that need an *optional*
/// profiling clock (the engine's `MEMDOS_ENGINE_PROF` stage counters)
/// take timestamps through this helper instead of touching
/// `std::time::Instant` themselves. Never feed the value into anything
/// that shapes output — it is for diagnostics only.
// lint:allow(determinism-taint) -- diagnostics-only stage profiling clock; gated behind MEMDOS_ENGINE_PROF and never fed into verdicts
pub fn monotonic_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(Instant::now);
    Instant::now().duration_since(origin).as_nanos() as u64
}

/// Applies `f` to every item of `items` on `workers` threads and returns
/// the results **in input order**.
///
/// Work distribution is a shared atomic cursor (each idle worker claims
/// the next unclaimed index), so uneven cell costs cannot stall the
/// queue; completed results flow back over a channel tagged with their
/// index and are re-assembled in order. With `workers <= 1` the items are
/// mapped inline on the calling thread — the parallel path produces the
/// same `Vec` in the same order, it only computes it on more threads.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                // A send only fails when the receiver is gone, which
                // means the collector below already stopped; just exit.
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        // Drop the original sender so the receive loop ends once every
        // worker has finished and dropped its clone.
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, result) in rx {
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(result);
            }
        }
        slots.into_iter().flatten().collect()
    })
}

/// [`parallel_map`] over **owned** items: applies `f` to every item of
/// `items` on `workers` threads and returns the results in input order.
///
/// The engine's batch dispatch needs this variant — each tenant shard
/// owns mutable session state (`&mut` inside the closure's argument), so
/// items must move into the workers rather than be shared behind `&T`.
/// Items are parked in per-index `Mutex<Option<T>>` slots; each worker
/// claims indices from a shared atomic cursor and takes the item out of
/// its slot, so every item is processed exactly once. With `workers <= 1`
/// the items are mapped inline on the calling thread, producing the same
/// `Vec` in the same order.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                // Each index is claimed exactly once via the cursor, so
                // the slot still holds its item; a poisoned lock (another
                // worker panicked while holding it) cannot occur for a
                // distinct index, but recover rather than unwrap to stay
                // panic-free.
                let item = match slot.lock() {
                    Ok(mut guard) => guard.take(),
                    Err(poisoned) => poisoned.into_inner().take(),
                };
                let Some(item) = item else { break };
                // A send only fails when the receiver is gone, which
                // means the collector below already stopped; just exit.
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, result) in rx {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(result);
            }
        }
        out.into_iter().flatten().collect()
    })
}

/// One (application × attack × run) cell of the evaluation grid. All
/// schemes applicable to the cell are executed together, exactly as the
/// sequential engine does (passive schemes share one server execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Application under protection.
    pub app: Application,
    /// Attack launched in Stage 3.
    pub attack: AttackKind,
    /// Run index (seeds derive from it).
    pub run: u64,
}

/// Result of one grid cell: the cell and every applicable scheme's
/// outcome, in the scheme order `run_all_schemes` produces.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell that was executed.
    pub cell: GridCell,
    /// Per-scheme outcomes.
    pub outcomes: Vec<RunOutcome>,
}

/// Enumerates the evaluation grid in canonical order — attacks outermost,
/// then applications, then run index — the order the sequential sweep
/// executed in, so order-sensitive aggregation is unchanged.
pub fn grid(apps: &[Application], attacks: &[AttackKind], runs: u64) -> Vec<GridCell> {
    let mut cells = Vec::with_capacity(apps.len() * attacks.len() * runs as usize);
    for &attack in attacks {
        for &app in apps {
            for run in 0..runs {
                cells.push(GridCell { app, attack, run });
            }
        }
    }
    cells
}

/// Runs the full evaluation grid on `workers` threads.
///
/// `base` supplies everything but the per-cell `app`/`attack`/`stages`;
/// results come back in [`grid`] order and are bit-identical to what a
/// sequential loop over the same grid would produce (see the crate docs
/// for why).
///
/// # Errors
///
/// Propagates the first `CoreError` (in grid order) from any cell.
pub fn run_grid(
    base: &ExperimentConfig,
    apps: &[Application],
    attacks: &[AttackKind],
    stages: StageConfig,
    runs: u64,
    workers: usize,
) -> Result<Vec<CellOutcome>, CoreError> {
    let cells = grid(apps, attacks, runs);
    // Grid cells are CPU-bound; a pool wider than the machine buys no
    // concurrency (see [`cores`]), so clamp the requested width.
    let workers = workers.min(cores());
    parallel_map(&cells, workers, |cell| {
        let cfg = ExperimentConfig {
            app: cell.app,
            attack: cell.attack,
            stages,
            ..base.clone()
        };
        cfg.run_all_schemes(cell.run)
            .map(|outcomes| CellOutcome { cell: *cell, outcomes })
    })
    .into_iter()
    .collect()
}

/// Captures the raw observation traces of runs `0..n_runs` of `cfg` on
/// `workers` threads, in run order — the parallel counterpart of calling
/// `cfg.capture_run(r)` in a loop (used by the sensitivity sweeps, which
/// replay one captured trace against many parameter points).
pub fn capture_runs(cfg: &ExperimentConfig, n_runs: u64, workers: usize) -> Vec<CapturedRun> {
    let runs: Vec<u64> = (0..n_runs).collect();
    parallel_map(&runs, workers.min(cores()), |&run| cfg.capture_run(run))
}

/// Captures the full (application × run × attack) trace grid on
/// `workers` threads, sharing each `(app, run)` pair's stage-1/2
/// simulation prefix across all `attacks` via
/// [`ExperimentConfig::capture_attack_sweep`].
///
/// Results come back flattened in `(app, run, attack)` order —
/// applications outermost, attacks innermost, because the attacks of one
/// pair are produced together by a single sweep. Output is bit-identical
/// to calling `capture_run` per cell (the sweep's contract), so worker
/// count and the prefix sharing itself never shape the traces.
///
/// `base.attack` is ignored; `base.app` is overridden per cell.
pub fn capture_grid(
    base: &ExperimentConfig,
    apps: &[Application],
    attacks: &[AttackKind],
    stages: StageConfig,
    runs: u64,
    workers: usize,
) -> Vec<CapturedRun> {
    let mut pairs = Vec::with_capacity(apps.len() * runs as usize);
    for &app in apps {
        for run in 0..runs {
            pairs.push((app, run));
        }
    }
    let workers = workers.min(cores());
    parallel_map(&pairs, workers, |&(app, run)| {
        let cfg = ExperimentConfig { app, stages, ..base.clone() };
        cfg.capture_attack_sweep(attacks, run)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(&items, workers, |&x| x * x), expected);
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(parallel_map(&empty, 4, |&x: &u64| x).len(), 0);
        assert_eq!(parallel_map(&[7u64], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn grid_order_is_attack_app_run() {
        let cells = grid(
            &[Application::KMeans, Application::FaceNet],
            &[AttackKind::BusLocking],
            2,
        );
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].app, Application::KMeans);
        assert_eq!(cells[0].run, 0);
        assert_eq!(cells[1].run, 1);
        assert_eq!(cells[2].app, Application::FaceNet);
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn capture_grid_is_worker_invariant_and_ordered() {
        let stages = StageConfig {
            profile_ticks: 150,
            benign_ticks: 150,
            attack_ticks: 150,
            interval_ticks: 50,
            grace_ticks: 50,
        };
        let base = ExperimentConfig { seed: 0x9A1D, ..ExperimentConfig::default() };
        let apps = [Application::KMeans, Application::FaceNet];
        let attacks = AttackKind::ALL;
        let one = capture_grid(&base, &apps, &attacks, stages, 1, 1);
        let many = capture_grid(&base, &apps, &attacks, stages, 1, 8);
        assert_eq!(one.len(), apps.len() * attacks.len());
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(format!("{:?}", a.observations), format!("{:?}", b.observations));
        }
        // (app, run, attack) order: entries sharing a prefix pair are
        // adjacent, and different apps produce different traces.
        assert_ne!(
            format!("{:?}", one[0].observations),
            format!("{:?}", one[attacks.len()].observations)
        );
    }

    #[test]
    fn parallel_map_owned_preserves_input_order() {
        let items: Vec<String> = (0..57).map(|i| format!("item-{i}")).collect();
        let expected: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        for workers in [1, 2, 3, 8] {
            let got = parallel_map_owned(items.clone(), workers, |mut s: String| {
                s.push('!');
                s
            });
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn parallel_map_owned_handles_empty_and_tiny_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert_eq!(parallel_map_owned(empty, 4, |x: u64| x).len(), 0);
        assert_eq!(parallel_map_owned(vec![7u64], 4, |x| x + 1), vec![8]);
    }
}
