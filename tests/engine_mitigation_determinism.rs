//! Tier-1: the determinism contract of the *closed-loop* respond path.
//!
//! The respond driver feeds a seeded fleet scenario with a ground-truth
//! attacker into the engine and applies the engine's mitigation actions
//! back to the generator — so any nondeterminism in the mitigation
//! state machine would not just reorder a log line, it would change the
//! workload itself and cascade. This test pins the whole loop: for each
//! respond scenario shape, the verdict log (`mitigation_*` events
//! included), the engine stats and the applied-action trace must be
//! byte-identical at worker counts 1, 2 and 4, and across the fast and
//! fallback decoder paths.
//!
//! Worker counts are passed explicitly through `engine::Config` (not
//! via `MEMDOS_THREADS`) because Rust tests share one process
//! environment.

use memdos::engine::respond::{
    respond_engine_config, respond_scenario, run_respond, RespondReport, RespondScenario,
};

const TENANTS: u32 = 6;
const SEED: u64 = 42;

fn run(kind: RespondScenario, workers: usize, fast_parse: bool) -> RespondReport {
    let scenario = respond_scenario(kind, TENANTS, SEED);
    let mut config = respond_engine_config(workers);
    config.fast_parse = fast_parse;
    run_respond(&scenario, config, None).expect("respond scenario is valid")
}

#[test]
fn respond_loop_is_byte_identical_across_workers_and_decoders() {
    for kind in RespondScenario::ALL {
        let reference = run(kind, 1, true);
        assert!(!reference.log.is_empty());
        // The loop actually engaged a control on the labelled attacker,
        // so the feedback edge is live, not vacuous.
        let attacker = reference.attacker.clone().expect("scenario labels an attacker");
        assert!(
            reference.actions.iter().all(|a| a.tenant == attacker && a.applied),
            "{}: every action targets the ground-truth attacker",
            kind.label()
        );
        assert!(
            reference.stats.mitigations_engaged >= 1,
            "{}: the loop must engage",
            kind.label()
        );
        assert!(
            reference.log.iter().any(|l| l.contains(r#""event":"mitigation_engaged""#)),
            "{}: mitigation events must be in the log",
            kind.label()
        );
        for workers in [2, 4] {
            let replay = run(kind, workers, true);
            assert_eq!(
                replay.log,
                reference.log,
                "{}: log diverged at workers={workers}",
                kind.label()
            );
            assert_eq!(
                replay.stats,
                reference.stats,
                "{}: stats diverged at workers={workers}",
                kind.label()
            );
            assert_eq!(
                replay.actions,
                reference.actions,
                "{}: action trace diverged at workers={workers}",
                kind.label()
            );
            assert_eq!(replay.lines_fed, reference.lines_fed);
        }
        // The fallback (non-fast) decoder decodes the same records, so
        // the closed loop must land on the same bytes.
        let dirty = run(kind, 2, false);
        assert_eq!(dirty.log, reference.log, "{}: log diverged on fallback decoder", kind.label());
        assert_eq!(dirty.stats, reference.stats);
        assert_eq!(dirty.actions, reference.actions);
    }
}
