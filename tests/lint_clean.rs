//! Tier-1 gate: the workspace must stay clean under its own static
//! analysis. Runs the real binary the same way CI and developers do.

use std::process::Command;

#[test]
fn workspace_passes_xtask_lint() {
    let output = Command::new(env!("CARGO"))
        .args(["run", "-q", "-p", "xtask", "--", "lint"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn `cargo run -p xtask -- lint`");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "xtask lint reported findings:\n{stdout}\n{stderr}"
    );
}
