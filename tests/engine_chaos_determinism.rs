//! Tier-1: the chaos harness is as deterministic as the engine it
//! tests.
//!
//! A fault scenario is a pure function of its seed: applying the same
//! [`FaultPlan`] seed to the same clean stream must reproduce the
//! chaotic stream and the fault trace byte-for-byte, and replaying that
//! chaotic stream must produce a byte-identical verdict log at worker
//! counts 1, 2 and 4. Distinct seeds must produce distinct fault
//! traces — otherwise the soak's N scenarios would silently retest one.
//!
//! Worker counts are passed explicitly through `engine::Config` (not
//! via `MEMDOS_THREADS`) because Rust tests share one process
//! environment.

use memdos::engine::chaos::{FaultPlan, FaultPlanConfig};
use memdos::engine::demo::{demo_jsonl, DemoLayout};
use memdos::engine::engine::Engine;
use memdos::engine::soak::{scenario_engine_config, WORKER_SWEEP};
use memdos::stats::rng::derive_seed;
use std::sync::OnceLock;

/// Compact four-phase layout: big enough that every fault class has
/// room to fire, small enough for tier-1.
const CHAOS_LAYOUT: DemoLayout = DemoLayout {
    profile_ticks: 400,
    benign_ticks: 100,
    attack_ticks: 100,
    tail_ticks: 50,
};

/// The clean demo stream, generated once per test process.
fn clean_lines() -> &'static [String] {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| demo_jsonl(0xC0DE, &CHAOS_LAYOUT, memdos::runner::threads()))
}

fn replay(lines: &[String], workers: usize) -> Vec<String> {
    let mut engine = Engine::new(scenario_engine_config(workers, &CHAOS_LAYOUT))
        .expect("scenario config is valid");
    for line in lines {
        engine.ingest_line(line);
    }
    engine.finish();
    engine.log_lines().to_vec()
}

#[test]
fn same_fault_seed_is_byte_identical_across_worker_counts() {
    let clean = clean_lines();
    let (chaotic, trace) = FaultPlan::apply(7, FaultPlanConfig::chaos(), clean)
        .expect("chaos rates are valid");
    assert!(trace.total() > 0, "chaos rates must fire on {} lines", clean.len());

    // The plan itself replays byte-for-byte from its seed.
    let (again, trace_again) =
        FaultPlan::apply(7, FaultPlanConfig::chaos(), clean).expect("chaos rates are valid");
    assert_eq!(again, chaotic, "fault injection is not a pure function of its seed");
    assert_eq!(trace_again.fingerprint(), trace.fingerprint());

    // And the engine's log over the chaotic stream is worker-invariant.
    let mut reference: Option<Vec<String>> = None;
    for workers in WORKER_SWEEP {
        let log = replay(&chaotic, workers);
        assert!(!log.is_empty());
        match &reference {
            None => reference = Some(log),
            Some(ref_log) => {
                assert_eq!(&log, ref_log, "workers={workers} diverged from the reference log");
            }
        }
    }
}

#[test]
fn distinct_seeds_produce_distinct_fault_traces() {
    let clean = clean_lines();
    let runs: Vec<(Vec<String>, u64)> = (0..4u64)
        .map(|i| {
            let seed = derive_seed(0xFA17, i);
            let (chaotic, trace) = FaultPlan::apply(seed, FaultPlanConfig::chaos(), clean)
                .expect("chaos rates are valid");
            assert!(trace.total() > 0, "seed {seed} injected nothing");
            (chaotic, trace.fingerprint())
        })
        .collect();
    for (i, (stream_a, fp_a)) in runs.iter().enumerate() {
        for (stream_b, fp_b) in runs.iter().skip(i + 1) {
            assert_ne!(fp_a, fp_b, "two distinct seeds produced identical fault traces");
            assert_ne!(stream_a, stream_b, "two distinct seeds produced identical streams");
        }
    }
}
