//! Tier-1: the engine's deterministic-replay guarantee at fleet scale,
//! *across evictions*.
//!
//! A fleet scenario (thousands of zipf-scheduled tenants with churn)
//! replayed under a memory ceiling far below the tenant count must
//! produce a byte-identical verdict log at worker counts 1, 2 and 4 —
//! the ceiling forces continuous LRU eviction, generation-bumping
//! reopens and slab slot recycling, and none of it may depend on how
//! sessions were sharded. This is the determinism contract Issue 8
//! extends to the fleet path; the demo-stream variant lives in
//! `engine_replay_determinism.rs`.
//!
//! Worker counts are passed explicitly through `engine::Config` (not
//! via `MEMDOS_THREADS`) because Rust tests share one process
//! environment.

use memdos::engine::engine::Engine;
use memdos::engine::fleet::{fleet_engine_config, fleet_jsonl};
use memdos::sim::fleet::FleetConfig;
use std::sync::OnceLock;

/// The tenant count deliberately dwarfs the ceiling, so eviction is the
/// steady state, not an edge case.
const TENANTS: u32 = 3_000;
const CEILING: usize = 256;

/// The fleet stream, generated once per test process.
fn fleet_lines() -> &'static [String] {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| {
        let config = FleetConfig {
            tenants: TENANTS,
            span_ticks: 2_048,
            zipf_s: 1.1,
            min_interval: 4,
            max_interval: 64,
            churn: 0.2,
            seed: 0xF1EE7,
            attack: None,
        };
        fleet_jsonl(&config).expect("fleet config is valid")
    })
}

fn replay(lines: &[String], workers: usize) -> (Vec<String>, memdos::engine::engine::EngineStats, usize) {
    let mut engine =
        Engine::new(fleet_engine_config(workers, CEILING)).expect("fleet config is valid");
    for line in lines {
        engine.ingest_line(line);
    }
    engine.finish();
    (engine.log_lines().to_vec(), engine.stats(), engine.open_sessions())
}

#[test]
fn fleet_replay_is_byte_identical_across_workers_including_evictions() {
    let lines = fleet_lines();
    let (reference, stats, open) = replay(lines, 1);
    assert!(!reference.is_empty());
    // The scenario actually exercises the machinery under test.
    assert!(
        stats.evicted > 0,
        "{TENANTS} tenants over a {CEILING} ceiling must evict"
    );
    assert!(stats.reopened > 0, "evicted tenants that speak again must reopen");
    assert!(open <= CEILING, "open sessions ({open}) exceeded the ceiling");
    assert!(
        reference.iter().any(|l| l.contains(r#""reason":"evicted""#)),
        "evictions must be visible in the log"
    );
    for workers in [2, 4] {
        let (log, w_stats, w_open) = replay(lines, workers);
        assert_eq!(log, reference, "log diverged at workers={workers}");
        assert_eq!(w_stats, stats, "stats diverged at workers={workers}");
        assert_eq!(w_open, open, "open-session count diverged at workers={workers}");
    }
}
