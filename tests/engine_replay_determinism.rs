//! Tier-1: the engine's deterministic-replay guarantee on the demo
//! stream.
//!
//! Replaying the four-tenant demo JSONL must produce a byte-identical
//! verdict event log across reruns and across worker counts 1, 2 and 8.
//! Worker counts are passed explicitly through `engine::Config` — the
//! exact value `MEMDOS_THREADS` would inject via
//! `Config::from_env()` — because Rust tests share one process
//! environment and mutating it mid-suite races other tests.

use memdos::engine::demo::{demo_engine_config, demo_jsonl, LAYOUT, TENANTS};
use memdos::engine::engine::Engine;
use memdos::metrics::jsonl::JsonObject;
use std::sync::OnceLock;

/// The demo stream, generated once per test process.
fn demo_lines() -> &'static [String] {
    static LINES: OnceLock<Vec<String>> = OnceLock::new();
    LINES.get_or_init(|| demo_jsonl(0xD05, &LAYOUT, memdos::runner::threads()))
}

fn replay(lines: &[String], workers: usize) -> Vec<String> {
    let mut engine = Engine::new(demo_engine_config(workers)).expect("demo config is valid");
    for line in lines {
        engine.ingest_line(line);
    }
    engine.flush();
    engine.log_lines().to_vec()
}

#[test]
fn demo_replay_is_byte_identical_across_workers_and_reruns() {
    let lines = demo_lines();
    let reference = replay(lines, 1);
    assert!(!reference.is_empty());
    for workers in [2, 8] {
        assert_eq!(replay(lines, workers), reference, "workers={workers}");
    }
    // Regenerating the stream reproduces it byte-for-byte, and replaying
    // the regenerated stream reproduces the log.
    let regenerated = demo_jsonl(0xD05, &LAYOUT, 2);
    assert_eq!(&regenerated, lines);
    assert_eq!(replay(&regenerated, 4), reference);
}

#[test]
fn demo_replay_is_byte_identical_with_fast_path_on_and_off() {
    // The zero-allocation ingest fast path must be unobservable: the
    // demo replay through the borrowed parser and through the allocating
    // JsonObject parser produces the same bytes at every worker count.
    let lines = demo_lines();
    let reference = replay(lines, 1);
    for workers in [1usize, 2, 4] {
        let mut config = demo_engine_config(workers);
        config.fast_parse = false;
        let mut engine = Engine::new(config).expect("demo config is valid");
        for line in lines {
            engine.ingest_line(line);
        }
        engine.flush();
        assert_eq!(
            engine.log_lines(),
            &reference[..],
            "slow-path replay diverged at workers={workers}"
        );
    }
}

#[test]
fn demo_replay_log_tells_the_expected_story() {
    let log = replay(demo_lines(), memdos::runner::threads());
    let events: Vec<JsonObject> = log
        .iter()
        .map(|l| JsonObject::parse(l).expect("log lines are valid JSONL"))
        .collect();

    let count = |kind: &str| {
        events.iter().filter(|e| e.get_str("event") == Some(kind)).count()
    };
    assert_eq!(count("opened"), TENANTS.len());
    assert_eq!(count("profile_ready"), TENANTS.len());
    assert_eq!(count("closed"), TENANTS.len());
    assert_eq!(count("profile_failed"), 0);
    assert_eq!(count("malformed"), 0);

    for tenant in TENANTS {
        let ready = events
            .iter()
            .find(|e| {
                e.get_str("event") == Some("profile_ready")
                    && e.get_str("tenant") == Some(tenant.name)
            })
            .expect("every tenant profiles");
        assert_eq!(
            ready.get("periodic").and_then(|v| v.as_bool()),
            Some(tenant.app.is_periodic()),
            "periodicity classification for {}",
            tenant.name
        );
        // The attack raises an SDS alarm inside the attack window (in
        // per-tenant monitoring ticks: the attack launches after the
        // benign stretch).
        let alarm_tick = events
            .iter()
            .filter(|e| {
                e.get_str("event") == Some("verdict")
                    && e.get_str("tenant") == Some(tenant.name)
                    && e.get_str("to") == Some("alarm")
            })
            .filter_map(|e| e.get_f64("tick"))
            .next();
        let tick = alarm_tick.unwrap_or_else(|| {
            panic!("{} never alarmed during its attack window", tenant.name)
        });
        assert!(
            tick > LAYOUT.benign_ticks as f64,
            "{}: alarm at monitoring tick {tick}, before the attack launch",
            tenant.name
        );
    }
}
