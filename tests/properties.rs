//! Property-based tests over the core data structures and statistical
//! invariants, spanning the whole workspace.

use memdos::sim::cache::{CacheGeometry, DomainId, Llc};
use memdos::sim::rng::Rng;
use memdos::stats::bounds::{false_alarm_bound, required_h_c, NormalRange};
use memdos::stats::fft::{fft_real, ifft_in_place};
use memdos::stats::ks::ks_two_sample;
use memdos::stats::series::quantile;
use memdos::stats::smoothing::{Ewma, MovingAverage};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, 1..max_len)
}

proptest! {
    #[test]
    fn moving_average_stays_within_input_range(
        data in finite_vec(400),
        window in 1usize..50,
        step in 1usize..50,
    ) {
        prop_assume!(step <= window);
        let out = MovingAverage::apply(window, step, &data).unwrap();
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        for m in out {
            prop_assert!(m >= min - 1e-6 && m <= max + 1e-6);
        }
    }

    #[test]
    fn moving_average_emission_count_is_exact(
        len in 1usize..500,
        window in 1usize..60,
        step in 1usize..60,
    ) {
        prop_assume!(step <= window);
        let data = vec![1.0; len];
        let out = MovingAverage::apply(window, step, &data).unwrap();
        let expected = if len < window { 0 } else { 1 + (len - window) / step };
        prop_assert_eq!(out.len(), expected);
    }

    #[test]
    fn ewma_stays_within_input_range(data in finite_vec(300), alpha in 0.01f64..1.0) {
        let out = Ewma::apply(alpha, &data).unwrap();
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        for s in out {
            prop_assert!(s >= min - 1e-6 && s <= max + 1e-6);
        }
    }

    #[test]
    fn ewma_converges_to_constant(level in -1e6..1e6f64, alpha in 0.05f64..1.0) {
        let mut e = Ewma::new(alpha).unwrap();
        e.push(0.0);
        for _ in 0..2000 {
            e.push(level);
        }
        let s = e.value().unwrap();
        prop_assert!((s - level).abs() <= 1e-3 * level.abs().max(1.0));
    }

    #[test]
    fn chebyshev_h_c_is_minimal_and_sufficient(
        k in 1.01f64..4.0,
        conf_ppm in 900_000u32..999_999,
    ) {
        let confidence = conf_ppm as f64 / 1e6;
        let h = required_h_c(k, confidence).unwrap();
        prop_assert!(false_alarm_bound(k, h).unwrap() <= 1.0 - confidence + 1e-12);
        if h > 1 {
            prop_assert!(false_alarm_bound(k, h - 1).unwrap() > 1.0 - confidence);
        }
    }

    #[test]
    fn normal_range_always_contains_mean(
        mu in -1e9..1e9f64,
        sigma in 0.0..1e6f64,
        k in 1.001f64..10.0,
    ) {
        let r = NormalRange::new(mu, sigma, k).unwrap();
        prop_assert!(!r.is_violation(mu));
        prop_assert!(r.lower <= mu && mu <= r.upper);
    }

    #[test]
    fn ks_statistic_is_bounded_and_symmetric(a in finite_vec(60), b in finite_vec(60)) {
        let r1 = ks_two_sample(&a, &b).unwrap();
        let r2 = ks_two_sample(&b, &a).unwrap();
        prop_assert!((0.0..=1.0).contains(&r1.statistic));
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_samples_never_reject(a in finite_vec(100)) {
        let r = ks_two_sample(&a, &a).unwrap();
        prop_assert_eq!(r.statistic, 0.0);
        prop_assert!(!r.rejects_at(0.05));
    }

    #[test]
    fn fft_roundtrip_recovers_signal(signal in prop::collection::vec(-1e3..1e3f64, 1..129)) {
        let padded = signal.len().next_power_of_two();
        let mut spec = fft_real(&signal, padded).unwrap();
        ifft_in_place(&mut spec).unwrap();
        for (orig, z) in signal.iter().zip(&spec) {
            prop_assert!((orig - z.re).abs() < 1e-6, "{} vs {}", orig, z.re);
            prop_assert!(z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(data in finite_vec(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&data, lo).unwrap();
        let b = quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn rng_next_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        seed in any::<u64>(),
        accesses in 1usize..2000,
    ) {
        let mut llc = Llc::new(CacheGeometry { sets: 16, ways: 4 });
        let d0 = llc.register_domain();
        let d1 = llc.register_domain();
        let mut rng = Rng::new(seed);
        for _ in 0..accesses {
            let d = if rng.chance(0.5) { d0 } else { d1 };
            llc.access(d, rng.next_below(1 << 16));
        }
        let total = llc.occupancy(d0) + llc.occupancy(d1);
        prop_assert!(total <= 64);
        // Interval counters sum to the access count.
        let c0 = llc.drain_counters(d0);
        let c1 = llc.drain_counters(d1);
        prop_assert_eq!(c0.accesses + c1.accesses, accesses as u64);
        prop_assert!(c0.misses <= c0.accesses);
        prop_assert!(c1.misses <= c1.accesses);
    }

    #[test]
    fn cache_access_after_fill_always_hits(seed in any::<u64>()) {
        let mut llc = Llc::new(CacheGeometry { sets: 8, ways: 2 });
        let d = llc.register_domain();
        let mut rng = Rng::new(seed);
        let addr = rng.next_below(1 << 20);
        llc.access(d, addr);
        // Immediate re-access with no interleaving traffic must hit.
        prop_assert!(!llc.access(d, addr).is_miss());
    }

    #[test]
    fn domain_isolation_no_false_hits(seed in any::<u64>()) {
        let mut llc = Llc::new(CacheGeometry { sets: 8, ways: 4 });
        let a = llc.register_domain();
        let b = llc.register_domain();
        let mut rng = Rng::new(seed);
        let addr = rng.next_below(1 << 10);
        llc.access(a, addr);
        // The same line address in another domain is a distinct line.
        prop_assert!(llc.access(b, addr).is_miss());
        let _ = DomainId(0);
    }
}

/// Historical proptest shrink case (formerly the only entry in
/// `properties.proptest-regressions`): the all-zero one-sample signal
/// must round-trip through the FFT. Pinned here explicitly so the case
/// survives without the external shrink-seed file.
#[test]
fn fft_roundtrip_regression_zero_signal() {
    let signal = [0.0f64];
    let mut spec = fft_real(&signal, 1).unwrap();
    ifft_in_place(&mut spec).unwrap();
    let z = spec.first().unwrap();
    assert!(z.re.abs() < 1e-12 && z.im.abs() < 1e-12, "{z:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The simulator is deterministic: identical seeds produce identical
    /// PCM streams (heavier test, fewer cases).
    #[test]
    fn server_runs_are_reproducible(seed in any::<u64>()) {
        use memdos::sim::server::{Server, ServerConfig};
        use memdos::workloads::Application;
        let run = |seed: u64| {
            let cfg = ServerConfig {
                geometry: CacheGeometry { sets: 256, ways: 4 },
                ..ServerConfig::default()
            }
            .with_seed(seed);
            let mut server = Server::new(cfg);
            let llc = server.config().geometry.lines() as u64;
            let vm = server.add_vm("v", Application::Bayes.build(llc));
            (0..50u64)
                .map(|_| {
                    let r = server.tick();
                    let s = r.sample(vm).unwrap();
                    (s.accesses, s.misses)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
