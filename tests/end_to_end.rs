//! Cross-crate integration tests: the full paper protocol end to end,
//! exercised through the public facade crate.

use memdos::attacks::{schedule::Scheduled, AttackKind};
use memdos::core::config::SdsParams;
use memdos::core::detector::{Detector, Observation, ThrottleRequest};
use memdos::core::kstest::KsTestDetector;
use memdos::core::profile::Profiler;
use memdos::core::sds::Sds;
use memdos::metrics::experiment::{ExperimentConfig, Scheme, StageConfig};
use memdos::sim::server::{Server, ServerConfig};
use memdos::workloads::Application;

/// Builds a populated server: victim + dormant attacker + 3 utilities.
fn build(app: Application, attack: AttackKind, attack_at: u64, seed: u64) -> (Server, memdos::sim::VmId) {
    let mut server = Server::new(ServerConfig::default().with_seed(seed));
    let llc = server.config().geometry.lines() as u64;
    let geometry = server.config().geometry;
    let victim = server.add_vm(app.name(), app.build(llc));
    server.add_vm_parallel(
        "attacker",
        Box::new(Scheduled::starting_at(attack_at, attack.build(geometry))),
        attack.default_parallelism(),
    );
    for i in 0..3 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos::workloads::apps::utility::program(i)),
        );
    }
    (server, victim)
}

/// Profile, then monitor with SDS; returns (first alarm tick, ticks run).
fn run_sds(
    app: Application,
    attack: AttackKind,
    profile_ticks: u64,
    monitor_ticks: u64,
    attack_at: u64,
    seed: u64,
) -> Option<u64> {
    let (mut server, victim) = build(app, attack, attack_at, seed);
    let mut profiler = Profiler::default();
    for _ in 0..profile_ticks {
        let r = server.tick();
        profiler.observe(Observation::from(r.sample(victim).unwrap()));
    }
    let profile = profiler.finish().expect("profile");
    let mut sds = Sds::from_profile(&profile, &SdsParams::default()).expect("detector");
    for t in 0..monitor_ticks {
        let r = server.tick();
        let step = sds.on_observation(Observation::from(r.sample(victim).unwrap()));
        if step.became_active {
            return Some(profile_ticks + t);
        }
    }
    None
}

#[test]
fn sds_detects_bus_locking_on_nonperiodic_app() {
    let alarm = run_sds(Application::KMeans, AttackKind::BusLocking, 4_000, 10_000, 8_000, 1)
        .expect("attack must be detected");
    assert!(alarm >= 8_000, "false alarm at tick {alarm}");
    // SDS/B's minimum delay is 15 s = 1500 ticks.
    let delay = alarm - 8_000;
    assert!((1_400..4_000).contains(&delay), "delay {delay} ticks");
}

#[test]
fn sds_detects_cleansing_on_periodic_app() {
    let alarm = run_sds(Application::FaceNet, AttackKind::LlcCleansing, 8_000, 14_000, 14_000, 2)
        .expect("attack must be detected");
    assert!(alarm >= 14_000, "false alarm at tick {alarm}");
    let delay = alarm - 14_000;
    assert!(delay < 6_000, "delay {delay} ticks exceeds 60 s");
}

#[test]
fn sds_stays_quiet_without_attack() {
    // Attack scheduled far beyond the horizon: pure benign monitoring.
    let alarm = run_sds(Application::Bayes, AttackKind::BusLocking, 4_000, 8_000, u64::MAX / 2, 3);
    assert_eq!(alarm, None, "spurious SDS alarm");
}

#[test]
fn kstest_protocol_throttles_and_detects() {
    let (mut server, victim) = build(Application::KMeans, AttackKind::BusLocking, 4_000, 4);
    let mut det = KsTestDetector::default();
    let mut throttle_events = 0u32;
    let mut alarmed_during_attack = false;
    for t in 0..9_000u64 {
        let r = server.tick();
        let step = det.on_observation(Observation::from(r.sample(victim).unwrap()));
        match step.throttle {
            Some(ThrottleRequest::PauseOthers) => {
                throttle_events += 1;
                server.pause_all_except(victim);
            }
            Some(ThrottleRequest::ResumeAll) => server.resume_all(),
            None => {}
        }
        if t > 5_000 && det.alarm_active() {
            alarmed_during_attack = true;
        }
    }
    // One reference collection per L_R = 30 s.
    assert_eq!(throttle_events, 3);
    // KStest may also false-alarm before the launch (that is its §3.2
    // flaw); what it must do is hold the alarm while the attack runs.
    assert!(alarmed_during_attack, "KStest missed the bus-locking attack");
}

#[test]
fn experiment_runner_produces_consistent_outcomes() {
    let cfg = ExperimentConfig {
        app: Application::KMeans,
        attack: AttackKind::LlcCleansing,
        stages: StageConfig::quick(),
        ..ExperimentConfig::default()
    };
    let a = cfg.run_scheme(Scheme::Sds, 7).expect("run");
    let b = cfg.run_scheme(Scheme::Sds, 7).expect("run");
    // Determinism: identical runs produce identical alarm timelines.
    assert_eq!(a.alarm, b.alarm);
    let m = a.metrics(&cfg.stages);
    assert!(m.recall >= 0.99, "recall {}", m.recall);
    assert!(m.specificity >= 0.99, "specificity {}", m.specificity);
    let d = m.delay_secs.expect("detected");
    assert!((10.0..45.0).contains(&d), "delay {d}");
}

#[test]
fn captured_replay_matches_live_run() {
    let cfg = ExperimentConfig {
        app: Application::KMeans,
        attack: AttackKind::BusLocking,
        stages: StageConfig::quick(),
        ..ExperimentConfig::default()
    };
    let live = cfg.run_scheme(Scheme::Sds, 5).expect("live run");
    let replay = cfg
        .capture_run(5)
        .replay_sds(&cfg.sds_params)
        .expect("replay");
    // SDS is passive, so replaying the captured stream must reproduce
    // the live alarm timeline exactly.
    assert_eq!(live.alarm, replay.alarm);
    assert_eq!(live.activations, replay.activations);
}

#[test]
fn sdsb_and_sdsp_agree_with_combined_sds_on_periodic_app() {
    let cfg = ExperimentConfig {
        app: Application::Pca,
        attack: AttackKind::BusLocking,
        stages: StageConfig::quick(),
        ..ExperimentConfig::default()
    };
    let outcomes = cfg.run_all_schemes(3).expect("runs");
    let names: Vec<&str> = outcomes.iter().map(|o| o.scheme.name()).collect();
    assert!(names.contains(&"SDS"));
    assert!(names.contains(&"SDS/B"));
    assert!(names.contains(&"SDS/P"), "PCA must profile as periodic");
    assert!(names.contains(&"KStest"));
    for o in &outcomes {
        if o.scheme.is_passive() {
            let m = o.metrics(&cfg.stages);
            assert!(m.recall > 0.5, "{}: recall {}", o.scheme.name(), m.recall);
        }
    }
    // Combined SDS can only alarm when SDS/B does (B ∧ P for periodic).
    let sds = outcomes.iter().find(|o| o.scheme == Scheme::Sds).unwrap();
    let sdsb = outcomes.iter().find(|o| o.scheme == Scheme::SdsB).unwrap();
    for (s, b) in sds.alarm.iter().zip(&sdsb.alarm) {
        assert!(!s | b, "SDS active while SDS/B inactive");
    }
}
