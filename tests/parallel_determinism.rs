//! Tier-1 guarantee of the parallel runner: the experiment grid produces
//! **byte-identical** results regardless of worker count, and repeated
//! runs are byte-identical to each other. This is the contract that lets
//! every figure target fan out across cores without changing a single
//! digit of the paper reproduction.
//!
//! The comparison is on the full `Debug` rendering of the outcomes —
//! every alarm timestamp, every per-scheme event list — not on summary
//! statistics, so even a one-tick scheduling artifact would fail it.

use memdos::attacks::AttackKind;
use memdos::metrics::experiment::{ExperimentConfig, StageConfig};
use memdos::workloads::Application;

/// Compact stages: long enough for the profiler to fit every scheme
/// (the period detector needs its full profiling window), short enough
/// to keep this tier-1 test fast.
fn stages() -> StageConfig {
    StageConfig {
        profile_ticks: 1_500,
        benign_ticks: 1_200,
        attack_ticks: 1_200,
        interval_ticks: 400,
        grace_ticks: 400,
    }
}

/// Runs the grid at the given worker count and renders it to a string.
fn grid_fingerprint(workers: usize) -> String {
    let apps = [Application::KMeans, Application::FaceNet];
    let attacks = [AttackKind::BusLocking];
    let results = memdos::runner::run_grid(
        &ExperimentConfig::default(),
        &apps,
        &attacks,
        stages(),
        1,
        workers,
    )
    .expect("grid configs are built from the valid catalogs");
    assert_eq!(results.len(), apps.len() * attacks.len());
    format!("{results:?}")
}

#[test]
fn grid_results_are_identical_across_worker_counts_and_reruns() {
    let sequential = grid_fingerprint(1);
    assert!(sequential.contains("KMeans") && sequential.contains("FaceNet"));
    for workers in [2, 8] {
        assert_eq!(
            grid_fingerprint(workers),
            sequential,
            "grid output must be byte-identical at {workers} workers"
        );
    }
    // Determinism across repeated runs at the same worker count: nothing
    // ambient (time, address hashing, scheduling) leaks into results.
    assert_eq!(grid_fingerprint(2), grid_fingerprint(2));
}

#[test]
fn parallel_map_is_order_preserving_under_oversubscription() {
    // More workers than items and a non-trivial payload: results must
    // come back in input order, not completion order.
    let items: Vec<u64> = (0..17).collect();
    let doubled = memdos::runner::parallel_map(&items, 32, |&x| x * 2);
    assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
}
