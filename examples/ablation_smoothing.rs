//! Ablation: why SDS/B smooths before thresholding (§4.1).
//!
//! ```text
//! cargo run --release --example ablation_smoothing
//! ```
//!
//! The paper motivates the MA→EWMA pipeline by noting that "directly
//! thresholding the raw data may lead to inaccurate detection of
//! attacks" because of random variation. This ablation compares three
//! detectors on the same captured aggregation run (60 s benign + 60 s under
//! the bus-locking attack):
//!
//! * **naive** — the §4.1 strawman: "trigger the alarm when a data point
//!   `A_i` drops by a threshold (e.g., 50 %) of [the] prior data point
//!   `A_{i-1}`", straight on the raw samples;
//! * **MA only** — the paper's pipeline with α = 1 (EWMA disabled);
//! * **MA + EWMA** — the full Table 1 configuration.

use memdos::attacks::AttackKind;
use memdos::core::config::SdsParams;
use memdos::metrics::experiment::{ExperimentConfig, StageConfig};
use memdos::workloads::Application;

/// The §4.1 naive detector: alarm whenever a raw sample drops by more
/// than `threshold` relative to the previous sample. Returns benign
/// false-alarm events and the attack detection delay in ticks.
fn naive_detector(obs: &[f64], profile_n: usize, attack_at: usize, threshold: f64) -> (u32, Option<usize>) {
    let mut false_alarms = 0u32;
    let mut delay = None;
    for (t, w) in obs[profile_n..].windows(2).enumerate() {
        if w[1] < (1.0 - threshold) * w[0].max(1.0) {
            if t < attack_at {
                false_alarms += 1;
            } else if delay.is_none() {
                delay = Some(t - attack_at);
            }
        }
    }
    (false_alarms, delay)
}

fn main() {
    let stages = StageConfig::quick();
    let cfg = ExperimentConfig {
        app: Application::Aggregation,
        attack: AttackKind::BusLocking,
        stages,
        ..ExperimentConfig::default()
    };
    println!("capturing one aggregation run (60 s benign + 60 s bus-locking) ...");
    let captured = cfg.capture_run(0);
    let raw: Vec<f64> = captured.observations.iter().map(|o| o.access_num).collect();
    let profile_n = stages.profile_ticks as usize;
    let attack_at = stages.benign_ticks as usize;

    // The naive 50 %-drop rule on raw per-tick samples.
    let (fa_raw, d_raw) = naive_detector(&raw, profile_n, attack_at, 0.5);

    // MA only (α = 1.0) and full MA+EWMA via replay.
    let ma_only = {
        let mut p = SdsParams::default();
        p.sdsb.alpha = 1.0;
        captured.replay_sds(&p).expect("replay")
    };
    let full = captured.replay_sds(&SdsParams::default()).expect("replay");

    let summarize = |name: &str, fa: u32, delay: Option<f64>| {
        println!(
            "  {name:<10} benign false-alarm events: {fa:>3}   detection delay: {}",
            delay.map(|d| format!("{d:.1} s")).unwrap_or_else(|| "miss".into())
        );
    };
    println!("\nresults (aggregation, bus-locking):");
    summarize("naive", fa_raw, d_raw.map(|d| d as f64 / 100.0));
    let count_fa = |o: &memdos::metrics::experiment::RunOutcome| {
        o.activations.iter().filter(|&&t| t < attack_at as u64).count() as u32
    };
    let delay_of = |o: &memdos::metrics::experiment::RunOutcome| {
        o.metrics(&stages).delay_secs
    };
    summarize("MA only", count_fa(&ma_only), delay_of(&ma_only));
    summarize("MA+EWMA", count_fa(&full), delay_of(&full));
    println!(
        "\nThe naive rule fires on every burst and query gap; the smoothed\n\
         pipelines keep the benign stage clean — the paper's §4.1 rationale\n\
         for MA + EWMA preprocessing."
    );
}
