//! Reproduce the paper's measurement study (§3.3, Figs. 2–6) for any
//! application/attack pair: run 60 s benign + 60 s attacked and render
//! the victim's per-second cache statistics as ASCII charts.
//!
//! ```text
//! cargo run --release --example attack_impact [app] [bus-locking|llc-cleansing]
//! # e.g.
//! cargo run --release --example attack_impact facenet llc-cleansing
//! ```

use memdos::attacks::AttackKind;
use memdos::metrics::experiment::capture_trace;
use memdos::workloads::Application;

/// Renders a series as a fixed-height ASCII chart, one column per point.
fn chart(title: &str, series: &[f64], attack_at_col: usize) {
    const HEIGHT: usize = 12;
    let max = series.iter().cloned().fold(f64::MIN, f64::max).max(1.0);
    println!("\n{title}  (y-max = {max:.0}; '|' marks attack launch)");
    for row in (0..HEIGHT).rev() {
        let threshold = max * (row as f64 + 0.5) / HEIGHT as f64;
        let line: String = series
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i == attack_at_col {
                    '|'
                } else if v >= threshold {
                    '#'
                } else {
                    ' '
                }
            })
            .collect();
        println!("  {line}");
    }
    println!("  {}", "-".repeat(series.len()));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app: Application = args
        .get(1)
        .map(|s| s.parse().expect("unknown application"))
        .unwrap_or(Application::FaceNet);
    let attack = match args.get(2).map(String::as_str) {
        Some("llc-cleansing") => AttackKind::LlcCleansing,
        Some("bus-locking") | None => AttackKind::BusLocking,
        Some(other) => panic!("unknown attack `{other}`"),
    };

    println!("== {app} under the {attack} attack (60 s benign, 60 s attacked) ==");
    let trace = capture_trace(app, attack, 6_000, 6_000, 42);

    // Aggregate the 10 ms samples to one point per second for display.
    let per_second = |pick: fn(&(f64, f64)) -> f64| -> Vec<f64> {
        trace
            .chunks(100)
            .map(|w| w.iter().map(pick).sum::<f64>() / w.len() as f64)
            .collect()
    };
    let access = per_second(|s| s.0);
    let miss = per_second(|s| s.1);

    chart("AccessNum (mean per 10 ms tick, 1 s resolution)", &access, 60);
    chart("MissNum   (mean per 10 ms tick, 1 s resolution)", &miss, 60);

    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "\nObservation 1: AccessNum {:.0} -> {:.0} ({:+.0}%), MissNum {:.0} -> {:.0} ({:+.0}%)",
        mean(&access[..60]),
        mean(&access[61..]),
        (mean(&access[61..]) / mean(&access[..60]) - 1.0) * 100.0,
        mean(&miss[..60]),
        mean(&miss[61..]),
        (mean(&miss[61..]) / mean(&miss[..60]).max(1.0) - 1.0) * 100.0,
    );
}
