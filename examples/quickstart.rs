//! Quickstart: protect a VM with SDS and catch a bus-locking attack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full workflow of the paper: profile an application in its
//! safe window (Stage 1), monitor it with the combined SDS detector, let
//! a co-located attacker launch the atomic bus-locking attack, and
//! report the detection.

use memdos::attacks::{schedule::Scheduled, AttackKind};
use memdos::core::config::SdsParams;
use memdos::core::detector::{Detector, Observation};
use memdos::core::profile::Profiler;
use memdos::core::sds::Sds;
use memdos::core::CoreError;
use memdos::sim::server::{Server, ServerConfig};
use memdos::workloads::Application;

fn main() -> Result<(), CoreError> {
    let app = Application::KMeans;
    let attack = AttackKind::BusLocking;
    let attack_start_tick = 10_000; // t = 100 s

    // One victim, one (initially dormant) attacker, three utility VMs.
    let mut server = Server::new(ServerConfig::default());
    let llc = server.config().geometry.lines() as u64;
    let geometry = server.config().geometry;
    let victim = server.add_vm(app.name(), app.build(llc));
    server.add_vm(
        "attacker",
        Box::new(Scheduled::starting_at(attack_start_tick, attack.build(geometry))),
    );
    for i in 0..3 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos::workloads::apps::utility::program(i)),
        );
    }

    // Stage 1 — profile 40 s of benign behaviour.
    println!("[stage 1] profiling `{app}` for 40 s of simulated time ...");
    let mut profiler = Profiler::default();
    for _ in 0..4_000 {
        let report = server.tick();
        profiler.observe(Observation::from(report.sample(victim).expect("victim sample")));
    }
    let profile = profiler.finish()?;
    println!(
        "          AccessNum EWMA: mu = {:.0}, sigma = {:.1}; periodic = {}",
        profile.access.mu,
        profile.access.sigma,
        profile.is_periodic()
    );

    // Stage 2/3 — monitor; the attack goes live at t = 100 s.
    let mut sds = Sds::from_profile(&profile, &SdsParams::default())?;
    println!("[monitor] SDS armed; `{attack}` attack launches at t = 100 s");
    let mut detected = false;
    for _ in 0..12_000u64 {
        let report = server.tick();
        let obs = Observation::from(report.sample(victim).expect("victim sample"));
        let step = sds.on_observation(obs);
        if step.became_active {
            println!(
                "[ALARM ] SDS detected the attack at t = {:.1} s (delay {:.1} s)",
                report.time_secs,
                report.time_secs - 100.0
            );
            detected = true;
            break;
        }
    }
    if !detected {
        println!("[miss  ] no alarm raised — unexpected for this configuration");
    }
    Ok(())
}
