//! SDS/P on a periodic application (the paper's Fig. 8 walk-through).
//!
//! ```text
//! cargo run --release --example periodic_detection
//! ```
//!
//! Profiles FaceNet, confirms the periodic classification, then monitors
//! the period of its MA series in real time with SDS/P while an LLC
//! cleansing attack launches mid-run — printing the sequence of computed
//! periods exactly like Fig. 8(b).

use memdos::attacks::{schedule::Scheduled, AttackKind};
use memdos::core::detector::{Detector, Observation};
use memdos::core::profile::Profiler;
use memdos::core::sdsp::SdsP;
use memdos::core::CoreError;
use memdos::core::config::SdsPParams;
use memdos::sim::server::{Server, ServerConfig};
use memdos::workloads::Application;

fn main() -> Result<(), CoreError> {
    let attack_start_tick = 12_000; // t = 120 s

    let mut server = Server::new(ServerConfig::default());
    let llc = server.config().geometry.lines() as u64;
    let geometry = server.config().geometry;
    let victim = server.add_vm("facenet", Application::FaceNet.build(llc));
    server.add_vm_parallel(
        "attacker",
        Box::new(Scheduled::starting_at(
            attack_start_tick,
            AttackKind::LlcCleansing.build(geometry),
        )),
        AttackKind::LlcCleansing.default_parallelism(),
    );
    for i in 0..3 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos::workloads::apps::utility::program(i)),
        );
    }

    // Stage 1: profile 80 s (several training batches).
    println!("[stage 1] profiling facenet for 80 s ...");
    let mut profiler = Profiler::default();
    for _ in 0..8_000 {
        let report = server.tick();
        profiler.observe(Observation::from(report.sample(victim).expect("victim")));
    }
    let profile = profiler.finish()?;
    let periodicity = profile.periodicity.expect("facenet must profile as periodic");
    println!(
        "          periodic: normal period = {:.1} MA windows (~{:.1} s per batch), strength {:.2}",
        periodicity.period_ma,
        periodicity.period_ma * 0.5,
        periodicity.strength
    );

    // Monitor with SDS/P alone; print each period estimate (Fig. 8(b)).
    let mut sdsp = SdsP::from_profile(&profile, &SdsPParams::default())?;
    println!("[monitor] SDS/P armed (W_P = {} MA values); attack at t = 120 s", sdsp.window_size());
    let mut computations = 0;
    for _ in 0..14_000u64 {
        let report = server.tick();
        let obs = Observation::from(report.sample(victim).expect("victim"));
        let step = sdsp.on_observation(obs);
        if sdsp.computations() > computations {
            computations = sdsp.computations();
            let period = sdsp
                .last_period()
                .map(|p| format!("{p:5.1}"))
                .unwrap_or_else(|| " none".to_string());
            println!(
                "  t = {:6.1} s   period = {period} MA windows   consecutive deviations = {}",
                report.time_secs,
                sdsp.consecutive_changes()
            );
        }
        if step.became_active {
            println!(
                "[ALARM ] SDS/P detected the attack at t = {:.1} s (delay {:.1} s)",
                report.time_secs,
                report.time_secs - 120.0
            );
            return Ok(());
        }
    }
    println!("[miss  ] no alarm raised — unexpected for this configuration");
    Ok(())
}
