//! Protecting a *custom* application with SDS.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The paper's schemes are application-agnostic: anything with a stable
//! benign profile can be protected. This example defines a new workload
//! with the phase-machine API (a toy key-value store with get/scan/
//! compaction phases), profiles it, and shows SDS catching an LLC
//! cleansing attack against it — and staying quiet beforehand.

use memdos::attacks::{schedule::Scheduled, AttackKind};
use memdos::core::config::SdsParams;
use memdos::core::detector::{Detector, Observation};
use memdos::core::profile::Profiler;
use memdos::core::sds::Sds;
use memdos::core::CoreError;
use memdos::sim::server::{Server, ServerConfig};
use memdos::workloads::{BurstSpec, Pattern, PhaseMachine, PhaseSpec, Region};

/// A toy LSM-style key-value store: Zipf-skewed point reads over a block
/// cache, periodic range scans, and occasional compaction sweeps.
fn kv_store(llc_lines: u64) -> PhaseMachine {
    let block_cache = Region::new(0, llc_lines / 3);
    let sstables = Region::new(llc_lines, llc_lines); // cold, larger than LLC
    PhaseMachine::new(
        "kv-store",
        vec![
            PhaseSpec::new(
                "get",
                (20_000, 30_000),
                block_cache,
                Pattern::Zipf { theta: 1.1 },
                (60, 120),
            ),
            PhaseSpec::new(
                "scan",
                (4_000, 8_000),
                sstables,
                Pattern::Sequential { stride: 1 },
                (20, 40),
            ),
            PhaseSpec::new(
                "compact",
                (2_000, 4_000),
                sstables,
                Pattern::Sequential { stride: 8 },
                (40, 80),
            )
            .with_writes(0.5),
        ],
    )
    .with_burst(BurstSpec { prob_per_op: 0.0003, cycles: (20_000, 50_000) })
}

fn main() -> Result<(), CoreError> {
    let attack_start_tick = 9_000; // t = 90 s

    let mut server = Server::new(ServerConfig::default());
    let llc = server.config().geometry.lines() as u64;
    let geometry = server.config().geometry;
    let victim = server.add_vm("kv-store", Box::new(kv_store(llc)));
    server.add_vm_parallel(
        "attacker",
        Box::new(Scheduled::starting_at(
            attack_start_tick,
            AttackKind::LlcCleansing.build(geometry),
        )),
        AttackKind::LlcCleansing.default_parallelism(),
    );
    for i in 0..3 {
        server.add_vm(
            format!("util-{i}"),
            Box::new(memdos::workloads::apps::utility::program(i)),
        );
    }

    println!("[stage 1] profiling the custom kv-store for 40 s ...");
    let mut profiler = Profiler::default();
    for _ in 0..4_000 {
        let report = server.tick();
        profiler.observe(Observation::from(report.sample(victim).expect("victim")));
    }
    let profile = profiler.finish()?;
    println!(
        "          MissNum EWMA: mu = {:.0}, sigma = {:.1}; periodic = {}",
        profile.miss.mu,
        profile.miss.sigma,
        profile.is_periodic()
    );

    let mut sds = Sds::from_profile(&profile, &SdsParams::default())?;
    let mut false_alarms = 0u32;
    for _ in 0..13_000u64 {
        let report = server.tick();
        let obs = Observation::from(report.sample(victim).expect("victim"));
        let step = sds.on_observation(obs);
        if step.became_active {
            if report.time_secs < 90.0 {
                false_alarms += 1;
                println!("[false ] spurious alarm at t = {:.1} s", report.time_secs);
            } else {
                println!(
                    "[ALARM ] SDS detected the cleansing attack at t = {:.1} s (delay {:.1} s; {} false alarms before launch)",
                    report.time_secs,
                    report.time_secs - 90.0,
                    false_alarms
                );
                return Ok(());
            }
        }
    }
    println!("[miss  ] no alarm raised — unexpected for this configuration");
    Ok(())
}
