//! # memdos
//!
//! A from-scratch reproduction of *"Impact of Memory DoS Attacks on Cloud
//! Applications and Real-Time Detection Schemes"* (Li, Sen, Shen, Chuah;
//! ICPP '20): two lightweight statistical schemes — boundary-based
//! **SDS/B** and period-based **SDS/P** — that detect memory
//! denial-of-service attacks (atomic bus locking and LLC cleansing)
//! between co-located cloud VMs in real time, evaluated against the
//! throttling-based **KStest** baseline of Zhang et al. (AsiaCCS '17).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`stats`] — statistics & signal processing (MA/EWMA, Chebyshev
//!   bounds, two-sample KS, FFT, ACF, DFT-ACF period detection,
//!   correlation methods).
//! * [`sim`] — the simulated multi-tenant server (shared set-associative
//!   LLC, lockable memory bus, DRAM channel, hypervisor with execution
//!   throttling, PCM sampler).
//! * [`workloads`] — models of the paper's ten applications plus benign
//!   utility VMs.
//! * [`attacks`] — the bus-locking and LLC-cleansing attack programs.
//! * [`core`] — **the paper's contribution**: SDS/B, SDS/P, combined SDS,
//!   profiling, and the KStest baseline.
//! * [`metrics`] — the §5 experiment protocol and metrics (recall,
//!   specificity, detection delay, performance overhead).
//! * [`runner`] — the std-only parallel experiment engine that fans the
//!   evaluation grid across `MEMDOS_THREADS` workers with bit-identical
//!   (deterministically seeded, order-restored) results.
//! * [`engine`] — the long-running multi-tenant streaming detection
//!   engine: per-VM sessions, JSONL ingestion, tenant-sharded parallel
//!   dispatch and a deterministic verdict event log.
//!
//! ## Quickstart
//!
//! ```rust
//! use memdos::attacks::{schedule::Scheduled, AttackKind};
//! use memdos::core::{config::SdsParams, detector::{Detector, Observation},
//!                    profile::Profiler, sds::Sds};
//! use memdos::sim::server::{Server, ServerConfig};
//! use memdos::workloads::Application;
//!
//! // A server with a k-means victim and a bus-locking attacker that
//! // activates at t = 60 s (tick 6000).
//! let mut server = Server::new(ServerConfig::default());
//! let llc = server.config().geometry.lines() as u64;
//! let geometry = server.config().geometry;
//! let victim = server.add_vm("victim", Application::KMeans.build(llc));
//! server.add_vm(
//!     "attacker",
//!     Box::new(Scheduled::starting_at(6_000, AttackKind::BusLocking.build(geometry))),
//! );
//!
//! // Stage 1: profile the benign behaviour (shortened for the doctest).
//! let mut profiler = Profiler::default();
//! for _ in 0..3_000 {
//!     let report = server.tick();
//!     profiler.observe(Observation::from(report.sample(victim).unwrap()));
//! }
//! let profile = profiler.finish()?;
//!
//! // Stage 2: monitor in real time.
//! let mut sds = Sds::from_profile(&profile, &SdsParams::default())?;
//! let mut detected_at = None;
//! for _ in 0..6_000u64 {
//!     let report = server.tick();
//!     let step = sds.on_observation(Observation::from(report.sample(victim).unwrap()));
//!     if step.became_active && detected_at.is_none() {
//!         detected_at = Some(report.time_secs);
//!     }
//! }
//! let t = detected_at.expect("bus-locking attack must be detected");
//! assert!(t > 60.0, "no false alarm before the attack");
//! # Ok::<(), memdos::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use memdos_attacks as attacks;
pub use memdos_core as core;
pub use memdos_engine as engine;
pub use memdos_metrics as metrics;
pub use memdos_runner as runner;
pub use memdos_sim as sim;
pub use memdos_stats as stats;
pub use memdos_workloads as workloads;
