#!/usr/bin/env bash
# Full local gate: format, lint, build, test — the same sequence CI runs.
# With --lint-only, stop after the static analysis pass (fast pre-commit).
# With --sim-only, lint and then run just the simulation-engine gate:
# the sim/metrics/runner test suites (event-vs-reference equivalence,
# fork-sweep bit-identity, grid worker invariance) — the fast loop when
# iterating on the discrete-event engine.
set -euo pipefail

cd "$(dirname "$0")/.."

lint_only=0
sim_only=0
for arg in "$@"; do
    case "$arg" in
        --lint-only) lint_only=1 ;;
        --sim-only) sim_only=1 ;;
        *) echo "usage: $0 [--lint-only|--sim-only]" >&2; exit 2 ;;
    esac
done

# Advisory only: the tree predates rustfmt enforcement, so drift is
# reported but does not fail the gate.
if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check (advisory)"
    drift=$(cargo fmt --all --check 2>/dev/null | grep -c '^Diff in' || true)
    if [ "$drift" -gt 0 ]; then
        echo "    warning: rustfmt would change $drift block(s); run 'cargo fmt --all'"
    fi
else
    echo "==> rustfmt not installed; skipping format check"
fi

echo "==> xtask lint"
cargo run -q -p xtask -- lint

if [ "$lint_only" -eq 1 ]; then
    echo "Lint passed (--lint-only: skipping build and tests)."
    exit 0
fi

if [ "$sim_only" -eq 1 ]; then
    echo "==> cargo test (simulation engine: sim + metrics + runner)"
    cargo test -q -p memdos-sim -p memdos-metrics -p memdos-runner
    echo "Simulation-engine gate passed (--sim-only: skipping the full workspace)."
    exit 0
fi

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q

# The property-based suite is feature-gated because the offline build
# environment cannot fetch the external proptest crate. Run it whenever
# the dependency has been restored under [dev-dependencies] — the
# section must be scoped, or the `proptest = []` entry under
# [features] matches and the step fails on the missing crate.
if sed -n '/^\[dev-dependencies\]/,/^\[/p' Cargo.toml | grep -Eq '^proptest *='; then
    echo "==> cargo test --features proptest --test properties"
    cargo test -q --features proptest --test properties
else
    echo "==> proptest not in [dev-dependencies]; skipping the property suite"
fi

echo "All checks passed."
